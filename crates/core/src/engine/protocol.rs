//! The protocol axis of the engine: who transmits to whom each round.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::delta::{DynAdjacency, EdgeDelta};
use crate::{mix_seed, Snapshot};

/// Read-only view of the spreading state, handed to protocols each round.
///
/// `informed_list` enumerates `I_t` in the order nodes became informed
/// (sources first); `informed_at[v]` is the round node `v` was informed
/// (`0` for sources, [`SpreadView::UNINFORMED`] if not yet informed).
/// Protocols that iterate `informed_list` and draw randomness in that
/// order are trial-deterministic by construction.
#[derive(Debug)]
pub struct SpreadView<'a> {
    /// Rounds completed before (during [`Protocol::transmit`]) or
    /// including (during [`Protocol::end_round`]) the current one.
    pub round: u32,
    /// Number of nodes `n`.
    pub node_count: usize,
    /// Per-node informed round; [`SpreadView::UNINFORMED`] = still
    /// uninformed. The flat `u32` (instead of `Option<u32>`) halves the
    /// array and keeps the hot inner loops branchless: `informed_at[v] <
    /// round` and `informed_at[v] != UNINFORMED` are plain integer
    /// compares.
    pub informed_at: &'a [u32],
    /// `I_t` in information order.
    pub informed_list: &'a [u32],
}

impl SpreadView<'_> {
    /// Sentinel informed-round of a node that has not been informed.
    /// Rounds are bounded by the trial's `max_rounds`, so `u32::MAX` can
    /// never be a genuine informed round.
    pub const UNINFORMED: u32 = u32::MAX;

    /// `true` iff `v` is a member of `I_t`.
    #[inline]
    pub fn is_informed(&self, v: u32) -> bool {
        self.informed_at[v as usize] != Self::UNINFORMED
    }

    /// The round `v` became informed; `None` if still uninformed.
    #[inline]
    pub fn informed_round(&self, v: u32) -> Option<u32> {
        let at = self.informed_at[v as usize];
        (at != Self::UNINFORMED).then_some(at)
    }
}

/// Sink collecting one round's transmissions.
///
/// Every [`Transmissions::send`] counts as one message (the energy/
/// bandwidth metric observers can consume); sends to already-informed
/// nodes are deduplicated, and newly informed nodes do **not** relay
/// within the same round — exactly the `I_{t+1} = I_t ∪ N_{E_t}(I_t)`
/// semantics of §2.
#[derive(Debug)]
pub struct Transmissions<'a> {
    informed: &'a mut [bool],
    new_nodes: &'a mut Vec<u32>,
    messages: u64,
}

impl<'a> Transmissions<'a> {
    pub(crate) fn new(informed: &'a mut [bool], new_nodes: &'a mut Vec<u32>) -> Self {
        Transmissions {
            informed,
            new_nodes,
            messages: 0,
        }
    }

    /// Transmits to node `v`: counts one message and informs `v` if it
    /// was not informed yet.
    #[inline]
    pub fn send(&mut self, v: u32) {
        self.messages += 1;
        if !self.informed[v as usize] {
            self.informed[v as usize] = true;
            self.new_nodes.push(v);
        }
    }

    /// Informs node `v` without counting a message — for delta-path
    /// protocols that account for their message volume in aggregate via
    /// [`Transmissions::add_messages`] instead of per send.
    #[inline]
    pub fn inform(&mut self, v: u32) {
        if !self.informed[v as usize] {
            self.informed[v as usize] = true;
            self.new_nodes.push(v);
        }
    }

    /// Adds `count` messages to this round's tally without informing
    /// anyone (aggregate accounting counterpart of
    /// [`Transmissions::inform`]).
    #[inline]
    pub fn add_messages(&mut self, count: u64) {
        self.messages += count;
    }

    /// Messages sent so far this round.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

/// Whether a protocol can still make progress in future rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolStatus {
    /// The protocol may still inform new nodes; keep stepping.
    Active,
    /// No future round can inform anyone (e.g. every relay's TTL
    /// expired); the engine stops the trial early.
    Quiescent,
}

/// A round-step transmission rule over an evolving graph plus informed
/// set — the protocol axis of the [`Simulation`](crate::engine::Simulation)
/// engine.
///
/// Implementations must be deterministic functions of the seed passed to
/// [`Protocol::begin_trial`]: the engine derives that seed from the trial
/// index, which is what makes parallel and serial execution byte-identical.
pub trait Protocol: Send {
    /// Short human-readable protocol name (used in reports/labels).
    fn name(&self) -> &'static str;

    /// Resets per-trial state; `seed` is the trial's derived seed.
    fn begin_trial(&mut self, n: usize, seed: u64) {
        let _ = (n, seed);
    }

    /// Executes one round: read the snapshot `E_t` and the informed set
    /// `I_t` (`view.round == t`), and [`Transmissions::send`] to every
    /// chosen target.
    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>);

    /// Executes one round on the delta path: `adj` already reflects
    /// `E_t` (this round's `delta` has been applied), and the outcome —
    /// informed nodes *and* message count — must match what
    /// [`Protocol::transmit`] would produce over the materialized
    /// snapshot of the same round.
    ///
    /// The default implementation materializes the CSR snapshot and
    /// falls back to [`Protocol::transmit`], so custom protocols work on
    /// the delta path unchanged (they just don't profit from it).
    fn transmit_delta(
        &mut self,
        adj: &mut DynAdjacency,
        delta: &EdgeDelta,
        view: &SpreadView<'_>,
        out: &mut Transmissions<'_>,
    ) {
        let _ = delta;
        self.transmit(adj.snapshot(), view, out);
    }

    /// Called after the engine has recorded the round's newly informed
    /// nodes (`view.round` = rounds completed). Return
    /// [`ProtocolStatus::Quiescent`] when no future round can inform
    /// anyone, to stop the trial early.
    fn end_round(&mut self, view: &SpreadView<'_>) -> ProtocolStatus {
        let _ = view;
        ProtocolStatus::Active
    }

    /// Whether the intra-trial sharded executor ([`crate::shard`]) may
    /// replace this protocol's round loop when the engine's
    /// `.shards(..)` axis asks for it.
    ///
    /// The sharded executor hard-codes flooding semantics (deterministic
    /// relay on every edge, per-round messages
    /// `Σ_{u ∈ I_t} deg_{E_t}(u)`), so only protocols whose
    /// [`Protocol::transmit_delta`] is observably identical to that may
    /// return `true` — the engine then produces byte-identical records
    /// on either path. Defaults to `false`: randomized or stateful
    /// protocols keep their serial round loop and the shard setting is
    /// silently ignored.
    fn supports_sharded_flooding(&self) -> bool {
        false
    }
}

/// Deterministic flooding (§2): every informed node transmits on every
/// current edge, every round.
///
/// Equivalent to [`crate::flooding::flood`] run for run — the engine's
/// protocol-equivalence tests pin this down.
///
/// On the delta path the full informed-set scan is replaced by a
/// *frontier sweep*: only last round's newly informed nodes read their
/// adjacency, plus the round's added edges — a node adjacent to an older
/// informed node through an older edge was already informed. The message
/// tally (`Σ_{u ∈ I_t} deg_{E_t}(u)`, every informed node transmits on
/// every incident edge) is maintained incrementally from the churn, so
/// records match the snapshot path exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flooding {
    /// `Σ_{u ∈ I_t} deg_{E_t}(u)` — the messages a full flooding sweep
    /// would send this round, maintained from churn + frontier joins.
    informed_degree: u64,
    /// Start of the current frontier in `informed_list`.
    frontier_start: usize,
}

impl Flooding {
    /// The flooding protocol.
    pub fn new() -> Self {
        Flooding::default()
    }
}

impl Protocol for Flooding {
    fn name(&self) -> &'static str {
        "flooding"
    }

    fn begin_trial(&mut self, _n: usize, _seed: u64) {
        self.informed_degree = 0;
        self.frontier_start = 0;
    }

    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>) {
        for &u in view.informed_list {
            for &v in snap.neighbors(u) {
                out.send(v);
            }
        }
    }

    fn transmit_delta(
        &mut self,
        adj: &mut DynAdjacency,
        delta: &EdgeDelta,
        view: &SpreadView<'_>,
        out: &mut Transmissions<'_>,
    ) {
        // Member of I_{t-1}? The frontier carries informed_at == round,
        // and UNINFORMED (= u32::MAX) can never be below it.
        let informed_before = |x: u32| view.informed_at[x as usize] < view.round;
        for &(u, v) in delta.removed() {
            self.informed_degree -= informed_before(u) as u64 + informed_before(v) as u64;
        }
        for &(u, v) in delta.added() {
            self.informed_degree += informed_before(u) as u64 + informed_before(v) as u64;
            // A fresh edge delivers across it if either endpoint is in
            // I_t; `informed_at` is still UNINFORMED for nodes first
            // reached this round, so no same-round chaining.
            if view.is_informed(u) {
                out.inform(v);
            }
            if view.is_informed(v) {
                out.inform(u);
            }
        }
        for &u in &view.informed_list[self.frontier_start..] {
            self.informed_degree += adj.degree(u) as u64;
            for &v in adj.neighbors(u) {
                out.inform(v);
            }
        }
        self.frontier_start = view.informed_list.len();
        out.add_messages(self.informed_degree);
    }

    fn supports_sharded_flooding(&self) -> bool {
        // The sharded executor replicates exactly this transmit_delta
        // (the partitioned message partial sums add up to the same
        // informed-degree recurrence); pinned by the sharded-engine
        // byte-identity suite.
        true
    }
}

/// Randomized push gossip (§5): each informed node transmits to at most
/// `fanout` distinct random current neighbours per round.
///
/// With the same per-trial seed this reproduces
/// [`crate::gossip::push_spread`] exactly (same partial Fisher–Yates
/// draws in the same order).
#[derive(Debug, Clone)]
pub struct PushGossip {
    fanout: usize,
    rng: SmallRng,
    /// Sparse overlay of the *virtual* partial Fisher–Yates shuffle:
    /// `(index, value)` pairs for the at most `fanout` positions whose
    /// value differs from the underlying neighbour slice.
    displaced: Vec<(usize, u32)>,
}

impl PushGossip {
    /// A push protocol with the given per-round fanout.
    ///
    /// # Panics
    ///
    /// Panics if `fanout == 0`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        PushGossip {
            fanout,
            rng: SmallRng::seed_from_u64(0),
            displaced: Vec::new(),
        }
    }

    /// The per-round fanout `k`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Transmits from one node to at most `fanout` of its neighbours —
    /// the shared body of both stepping paths (identical RNG draws).
    ///
    /// Draws `fanout` distinct targets by a *virtual* partial
    /// Fisher–Yates: the same `gen_range(i..len)` draws, swaps, and
    /// outputs as shuffling a copy of the adjacency list, but the copy
    /// is never made — only the at most `fanout` displaced entries are
    /// tracked, so a high-degree informed node costs `O(fanout²)`
    /// bookkeeping instead of an `O(degree)` buffer fill. Byte-identical
    /// to the buffered implementation (and hence to the legacy
    /// `gossip::push_spread`) by construction; the engine suite pins it.
    fn push_targets(&mut self, neigh: &[u32], out: &mut Transmissions<'_>) {
        if neigh.len() <= self.fanout {
            for &v in neigh {
                out.send(v);
            }
            return;
        }
        self.displaced.clear();
        let at = |displaced: &[(usize, u32)], idx: usize| -> u32 {
            displaced
                .iter()
                .find(|(i, _)| *i == idx)
                .map_or(neigh[idx], |(_, v)| *v)
        };
        for i in 0..self.fanout {
            let j = self.rng.gen_range(i..neigh.len());
            // swap(i, j), then emit position i (= the old value at j).
            // Position i is never read again, so only j's new value is
            // recorded.
            let vi = at(&self.displaced, i);
            let vj = at(&self.displaced, j);
            match self.displaced.iter_mut().find(|(idx, _)| *idx == j) {
                Some(entry) => entry.1 = vi,
                None => self.displaced.push((j, vi)),
            }
            out.send(vj);
        }
    }
}

impl Protocol for PushGossip {
    fn name(&self) -> &'static str {
        "push-gossip"
    }

    fn begin_trial(&mut self, _n: usize, seed: u64) {
        // Same stream derivation as the legacy `gossip::push_spread`, so
        // the engine reproduces it bit for bit given the same seed.
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x905517));
    }

    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>) {
        for &u in view.informed_list {
            self.push_targets(snap.neighbors(u), out);
        }
    }

    fn transmit_delta(
        &mut self,
        adj: &mut DynAdjacency,
        _delta: &EdgeDelta,
        view: &SpreadView<'_>,
        out: &mut Transmissions<'_>,
    ) {
        // Every informed node draws randomness each round, so the scan
        // cannot shrink to the frontier — but the sorted adjacency lists
        // match the snapshot's exactly, so the RNG stream (and thus the
        // whole trial) is byte-identical, without ever building a CSR;
        // and the virtual shuffle in `push_targets` keeps the per-node
        // sampling cost fanout-bound instead of degree-bound.
        for &u in view.informed_list {
            self.push_targets(adj.neighbors(u), out);
        }
    }
}

/// Parsimonious flooding (\[4\], Baumann–Crescenzi–Fraigniaud): a node
/// relays only during the `ttl` rounds after becoming informed, then
/// falls silent.
///
/// Matches [`crate::gossip::parsimonious_flood`] run for run, including
/// the early stop once every relay has expired.
///
/// `informed_at` is nondecreasing along `informed_list`, so expired
/// relays always form a prefix; a cursor to the first live relay keeps
/// the per-round cost at O(live relays), like the legacy active-list
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsimoniousFlooding {
    ttl: u32,
    expired: usize,
}

impl ParsimoniousFlooding {
    /// A parsimonious protocol relaying for `ttl` rounds per node.
    ///
    /// # Panics
    ///
    /// Panics if `ttl == 0`.
    pub fn new(ttl: u32) -> Self {
        assert!(ttl > 0, "ttl must be positive");
        ParsimoniousFlooding { ttl, expired: 0 }
    }

    /// The relay window length.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// Advances the expired-prefix cursor for the given round.
    fn retire(&mut self, view: &SpreadView<'_>) {
        while let Some(&u) = view.informed_list.get(self.expired) {
            let at = view.informed_at[u as usize];
            debug_assert_ne!(at, SpreadView::UNINFORMED, "listed nodes are informed");
            if at.saturating_add(self.ttl) > view.round {
                break;
            }
            self.expired += 1;
        }
    }

    /// The shared relay sweep of both stepping paths: every live relay
    /// transmits to all of its current neighbours, whatever structure
    /// they are read from.
    fn relay<'a>(
        &mut self,
        view: &SpreadView<'_>,
        out: &mut Transmissions<'_>,
        neighbors: impl Fn(u32) -> &'a [u32],
    ) {
        self.retire(view);
        for &u in &view.informed_list[self.expired..] {
            for &v in neighbors(u) {
                out.send(v);
            }
        }
    }
}

impl Protocol for ParsimoniousFlooding {
    fn name(&self) -> &'static str {
        "parsimonious-flooding"
    }

    fn begin_trial(&mut self, _n: usize, _seed: u64) {
        self.expired = 0;
    }

    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>) {
        self.relay(view, out, |u| snap.neighbors(u));
    }

    fn transmit_delta(
        &mut self,
        adj: &mut DynAdjacency,
        _delta: &EdgeDelta,
        view: &SpreadView<'_>,
        out: &mut Transmissions<'_>,
    ) {
        // The live relays *are* a (TTL-windowed) frontier: only their
        // adjacency is read, straight from the incremental structure.
        let adj = &*adj;
        self.relay(view, out, |u| adj.neighbors(u));
    }

    fn end_round(&mut self, view: &SpreadView<'_>) -> ProtocolStatus {
        self.retire(view);
        if self.expired < view.informed_list.len() {
            ProtocolStatus::Active
        } else {
            ProtocolStatus::Quiescent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmissions_dedup_and_count() {
        let mut informed = vec![false, true, false];
        let mut new_nodes = Vec::new();
        let mut out = Transmissions::new(&mut informed, &mut new_nodes);
        out.send(0);
        out.send(0);
        out.send(1);
        assert_eq!(out.messages(), 3);
        assert_eq!(new_nodes, vec![0]);
        assert!(informed[0]);
    }

    #[test]
    #[should_panic(expected = "fanout must be positive")]
    fn zero_fanout_rejected() {
        let _ = PushGossip::new(0);
    }

    #[test]
    fn virtual_shuffle_matches_buffered_fisher_yates() {
        // Reference: the O(degree) buffered partial Fisher–Yates the
        // virtual shuffle replaced — same RNG draws, same targets, in
        // the same order, for every fanout and seed.
        let neigh: Vec<u32> = (0..97).map(|i| i * 3 + 1).collect();
        for fanout in [1usize, 2, 5, 16, 96] {
            for seed in 0..20u64 {
                let mut reference_rng = SmallRng::seed_from_u64(mix_seed(seed, 0x905517));
                let mut buf = neigh.clone();
                let mut expected = Vec::new();
                for i in 0..fanout {
                    let j = reference_rng.gen_range(i..buf.len());
                    buf.swap(i, j);
                    expected.push(buf[i]);
                }

                let mut p = PushGossip::new(fanout);
                p.begin_trial(neigh.len() + 1, seed);
                let mut informed = vec![false; 512];
                let mut new_nodes = Vec::new();
                let mut out = Transmissions::new(&mut informed, &mut new_nodes);
                p.push_targets(&neigh, &mut out);
                assert_eq!(out.messages(), fanout as u64);
                // Fisher–Yates targets are distinct, so the newly informed
                // list is exactly the emission order.
                assert_eq!(new_nodes, expected, "fanout {fanout}, seed {seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ttl must be positive")]
    fn zero_ttl_rejected() {
        let _ = ParsimoniousFlooding::new(0);
    }

    #[test]
    fn spread_view_sentinel_helpers() {
        let informed_at = vec![0, SpreadView::UNINFORMED, 3];
        let informed_list = vec![0u32, 2];
        let view = SpreadView {
            round: 3,
            node_count: 3,
            informed_at: &informed_at,
            informed_list: &informed_list,
        };
        assert!(view.is_informed(0) && view.is_informed(2));
        assert!(!view.is_informed(1));
        assert_eq!(view.informed_round(0), Some(0));
        assert_eq!(view.informed_round(1), None);
        assert_eq!(view.informed_round(2), Some(3));
    }

    #[test]
    fn parsimonious_quiescence() {
        let mut p = ParsimoniousFlooding::new(2);
        p.begin_trial(2, 0);
        let informed_at = vec![0, SpreadView::UNINFORMED];
        let informed_list = vec![0u32];
        let view = |round| SpreadView {
            round,
            node_count: 2,
            informed_at: &informed_at,
            informed_list: &informed_list,
        };
        // TTL 2 from round 0: the relay lives through rounds 0 and 1.
        assert_eq!(p.end_round(&view(1)), ProtocolStatus::Active);
        assert_eq!(p.end_round(&view(2)), ProtocolStatus::Quiescent);
    }
}
