//! The protocol axis of the engine: who transmits to whom each round.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{mix_seed, Snapshot};

/// Read-only view of the spreading state, handed to protocols each round.
///
/// `informed_list` enumerates `I_t` in the order nodes became informed
/// (sources first); `informed_at[v]` is the round node `v` was informed
/// (`Some(0)` for sources, `None` if not yet informed). Protocols that
/// iterate `informed_list` and draw randomness in that order are
/// trial-deterministic by construction.
#[derive(Debug)]
pub struct SpreadView<'a> {
    /// Rounds completed before (during [`Protocol::transmit`]) or
    /// including (during [`Protocol::end_round`]) the current one.
    pub round: u32,
    /// Number of nodes `n`.
    pub node_count: usize,
    /// Per-node informed round; `None` = still uninformed.
    pub informed_at: &'a [Option<u32>],
    /// `I_t` in information order.
    pub informed_list: &'a [u32],
}

/// Sink collecting one round's transmissions.
///
/// Every [`Transmissions::send`] counts as one message (the energy/
/// bandwidth metric observers can consume); sends to already-informed
/// nodes are deduplicated, and newly informed nodes do **not** relay
/// within the same round — exactly the `I_{t+1} = I_t ∪ N_{E_t}(I_t)`
/// semantics of §2.
#[derive(Debug)]
pub struct Transmissions<'a> {
    informed: &'a mut [bool],
    new_nodes: &'a mut Vec<u32>,
    messages: u64,
}

impl<'a> Transmissions<'a> {
    pub(crate) fn new(informed: &'a mut [bool], new_nodes: &'a mut Vec<u32>) -> Self {
        Transmissions {
            informed,
            new_nodes,
            messages: 0,
        }
    }

    /// Transmits to node `v`: counts one message and informs `v` if it
    /// was not informed yet.
    #[inline]
    pub fn send(&mut self, v: u32) {
        self.messages += 1;
        if !self.informed[v as usize] {
            self.informed[v as usize] = true;
            self.new_nodes.push(v);
        }
    }

    /// Messages sent so far this round.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

/// Whether a protocol can still make progress in future rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolStatus {
    /// The protocol may still inform new nodes; keep stepping.
    Active,
    /// No future round can inform anyone (e.g. every relay's TTL
    /// expired); the engine stops the trial early.
    Quiescent,
}

/// A round-step transmission rule over an evolving graph plus informed
/// set — the protocol axis of the [`Simulation`](crate::engine::Simulation)
/// engine.
///
/// Implementations must be deterministic functions of the seed passed to
/// [`Protocol::begin_trial`]: the engine derives that seed from the trial
/// index, which is what makes parallel and serial execution byte-identical.
pub trait Protocol: Send {
    /// Short human-readable protocol name (used in reports/labels).
    fn name(&self) -> &'static str;

    /// Resets per-trial state; `seed` is the trial's derived seed.
    fn begin_trial(&mut self, n: usize, seed: u64) {
        let _ = (n, seed);
    }

    /// Executes one round: read the snapshot `E_t` and the informed set
    /// `I_t` (`view.round == t`), and [`Transmissions::send`] to every
    /// chosen target.
    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>);

    /// Called after the engine has recorded the round's newly informed
    /// nodes (`view.round` = rounds completed). Return
    /// [`ProtocolStatus::Quiescent`] when no future round can inform
    /// anyone, to stop the trial early.
    fn end_round(&mut self, view: &SpreadView<'_>) -> ProtocolStatus {
        let _ = view;
        ProtocolStatus::Active
    }
}

/// Deterministic flooding (§2): every informed node transmits on every
/// current edge, every round.
///
/// Equivalent to [`crate::flooding::flood`] run for run — the engine's
/// protocol-equivalence tests pin this down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flooding;

impl Flooding {
    /// The flooding protocol.
    pub fn new() -> Self {
        Flooding
    }
}

impl Protocol for Flooding {
    fn name(&self) -> &'static str {
        "flooding"
    }

    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>) {
        for &u in view.informed_list {
            for &v in snap.neighbors(u) {
                out.send(v);
            }
        }
    }
}

/// Randomized push gossip (§5): each informed node transmits to at most
/// `fanout` distinct random current neighbours per round.
///
/// With the same per-trial seed this reproduces
/// [`crate::gossip::push_spread`] exactly (same partial Fisher–Yates
/// draws in the same order).
#[derive(Debug, Clone)]
pub struct PushGossip {
    fanout: usize,
    rng: SmallRng,
    pick_buf: Vec<u32>,
}

impl PushGossip {
    /// A push protocol with the given per-round fanout.
    ///
    /// # Panics
    ///
    /// Panics if `fanout == 0`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        PushGossip {
            fanout,
            rng: SmallRng::seed_from_u64(0),
            pick_buf: Vec::new(),
        }
    }

    /// The per-round fanout `k`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }
}

impl Protocol for PushGossip {
    fn name(&self) -> &'static str {
        "push-gossip"
    }

    fn begin_trial(&mut self, _n: usize, seed: u64) {
        // Same stream derivation as the legacy `gossip::push_spread`, so
        // the engine reproduces it bit for bit given the same seed.
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x905517));
    }

    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>) {
        for &u in view.informed_list {
            let neigh = snap.neighbors(u);
            if neigh.is_empty() {
                continue;
            }
            if neigh.len() <= self.fanout {
                for &v in neigh {
                    out.send(v);
                }
            } else {
                // Partial Fisher-Yates: draw `fanout` distinct targets.
                self.pick_buf.clear();
                self.pick_buf.extend_from_slice(neigh);
                for i in 0..self.fanout {
                    let j = self.rng.gen_range(i..self.pick_buf.len());
                    self.pick_buf.swap(i, j);
                    out.send(self.pick_buf[i]);
                }
            }
        }
    }
}

/// Parsimonious flooding (\[4\], Baumann–Crescenzi–Fraigniaud): a node
/// relays only during the `ttl` rounds after becoming informed, then
/// falls silent.
///
/// Matches [`crate::gossip::parsimonious_flood`] run for run, including
/// the early stop once every relay has expired.
///
/// `informed_at` is nondecreasing along `informed_list`, so expired
/// relays always form a prefix; a cursor to the first live relay keeps
/// the per-round cost at O(live relays), like the legacy active-list
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsimoniousFlooding {
    ttl: u32,
    expired: usize,
}

impl ParsimoniousFlooding {
    /// A parsimonious protocol relaying for `ttl` rounds per node.
    ///
    /// # Panics
    ///
    /// Panics if `ttl == 0`.
    pub fn new(ttl: u32) -> Self {
        assert!(ttl > 0, "ttl must be positive");
        ParsimoniousFlooding { ttl, expired: 0 }
    }

    /// The relay window length.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// Advances the expired-prefix cursor for the given round.
    fn retire(&mut self, view: &SpreadView<'_>) {
        while let Some(&u) = view.informed_list.get(self.expired) {
            let at = view.informed_at[u as usize].expect("informed nodes have a round");
            if at + self.ttl > view.round {
                break;
            }
            self.expired += 1;
        }
    }
}

impl Protocol for ParsimoniousFlooding {
    fn name(&self) -> &'static str {
        "parsimonious-flooding"
    }

    fn begin_trial(&mut self, _n: usize, _seed: u64) {
        self.expired = 0;
    }

    fn transmit(&mut self, snap: &Snapshot, view: &SpreadView<'_>, out: &mut Transmissions<'_>) {
        self.retire(view);
        for &u in &view.informed_list[self.expired..] {
            for &v in snap.neighbors(u) {
                out.send(v);
            }
        }
    }

    fn end_round(&mut self, view: &SpreadView<'_>) -> ProtocolStatus {
        self.retire(view);
        if self.expired < view.informed_list.len() {
            ProtocolStatus::Active
        } else {
            ProtocolStatus::Quiescent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmissions_dedup_and_count() {
        let mut informed = vec![false, true, false];
        let mut new_nodes = Vec::new();
        let mut out = Transmissions::new(&mut informed, &mut new_nodes);
        out.send(0);
        out.send(0);
        out.send(1);
        assert_eq!(out.messages(), 3);
        assert_eq!(new_nodes, vec![0]);
        assert!(informed[0]);
    }

    #[test]
    #[should_panic(expected = "fanout must be positive")]
    fn zero_fanout_rejected() {
        let _ = PushGossip::new(0);
    }

    #[test]
    #[should_panic(expected = "ttl must be positive")]
    fn zero_ttl_rejected() {
        let _ = ParsimoniousFlooding::new(0);
    }

    #[test]
    fn parsimonious_quiescence() {
        let mut p = ParsimoniousFlooding::new(2);
        p.begin_trial(2, 0);
        let informed_at = vec![Some(0), None];
        let informed_list = vec![0u32];
        let view = |round| SpreadView {
            round,
            node_count: 2,
            informed_at: &informed_at,
            informed_list: &informed_list,
        };
        // TTL 2 from round 0: the relay lives through rounds 0 and 1.
        assert_eq!(p.end_round(&view(1)), ProtocolStatus::Active);
        assert_eq!(p.end_round(&view(2)), ProtocolStatus::Quiescent);
    }
}
