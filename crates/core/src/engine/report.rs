//! Trial records and the aggregated simulation report.

use dg_stats::{Quantiles, Summary};

/// The outcome of one engine trial.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrialRecord {
    /// Trial index (also the seed stream index).
    pub trial: usize,
    /// The derived seed (`mix_seed(base_seed, trial)`) the model and
    /// protocol were initialized with.
    pub seed: u64,
    /// Spreading completion time; `None` if the trial hit its round cap
    /// or went quiescent before informing everyone.
    pub time: Option<u32>,
    /// Nodes informed by the end of the trial.
    pub informed: usize,
    /// Rounds actually executed.
    pub rounds: u32,
    /// Total messages transmitted (every send counts, including to
    /// already-informed nodes).
    pub messages: u64,
}

/// Aggregated results of a batch of engine trials, ordered by trial
/// index — so two runs with the same seeds compare equal regardless of
/// thread scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimulationReport {
    node_count: usize,
    records: Vec<TrialRecord>,
}

impl SimulationReport {
    pub(crate) fn new(node_count: usize, records: Vec<TrialRecord>) -> Self {
        SimulationReport {
            node_count,
            records,
        }
    }

    /// Number of nodes `n` of the simulated processes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Per-trial records, ordered by trial index.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.records.len()
    }

    /// Per-trial spreading times (`None` = incomplete).
    pub fn times(&self) -> Vec<Option<u32>> {
        self.records.iter().map(|r| r.time).collect()
    }

    /// Number of trials that did not inform everyone.
    pub fn incomplete(&self) -> usize {
        self.records.iter().filter(|r| r.time.is_none()).count()
    }

    /// Completed spreading times as `f64`s.
    pub fn completed(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.time.map(|t| t as f64))
            .collect()
    }

    /// Streaming summary over completed trials.
    pub fn summary(&self) -> Summary {
        self.completed().into_iter().collect()
    }

    /// Order statistics over completed trials; `None` if no trial
    /// completed.
    pub fn quantiles(&self) -> Option<Quantiles> {
        Quantiles::try_new(self.completed())
    }

    /// Mean spreading time over completed trials (`NaN` if none
    /// completed — check [`SimulationReport::incomplete`] first).
    pub fn mean(&self) -> f64 {
        self.summary().mean()
    }

    /// Empirical 95th percentile of completed times — the stand-in for
    /// the paper's with-high-probability bounds; `None` if no trial
    /// completed.
    pub fn p95(&self) -> Option<f64> {
        self.quantiles().map(|q| q.p95())
    }

    /// Largest completed spreading time; `None` if no trial completed.
    pub fn max(&self) -> Option<f64> {
        self.quantiles().map(|q| q.max())
    }

    /// Total messages across all trials.
    pub fn total_messages(&self) -> u64 {
        self.records.iter().map(|r| r.messages).sum()
    }

    /// Mean messages per trial.
    pub fn mean_messages(&self) -> f64 {
        if self.records.is_empty() {
            return f64::NAN;
        }
        self.total_messages() as f64 / self.records.len() as f64
    }

    /// Mean fraction of nodes informed at trial end (1.0 when every
    /// trial completed).
    pub fn mean_coverage(&self) -> f64 {
        if self.records.is_empty() || self.node_count == 0 {
            return f64::NAN;
        }
        let covered: f64 = self
            .records
            .iter()
            .map(|r| r.informed as f64 / self.node_count as f64)
            .sum();
        covered / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trial: usize, time: Option<u32>, informed: usize, messages: u64) -> TrialRecord {
        TrialRecord {
            trial,
            seed: trial as u64,
            time,
            informed,
            rounds: time.unwrap_or(10),
            messages,
        }
    }

    #[test]
    fn aggregates() {
        let r = SimulationReport::new(
            10,
            vec![
                rec(0, Some(4), 10, 40),
                rec(1, Some(6), 10, 60),
                rec(2, None, 5, 20),
            ],
        );
        assert_eq!(r.trials(), 3);
        assert_eq!(r.incomplete(), 1);
        assert_eq!(r.completed(), vec![4.0, 6.0]);
        assert_eq!(r.mean(), 5.0);
        assert_eq!(r.max(), Some(6.0));
        assert_eq!(r.total_messages(), 120);
        assert_eq!(r.mean_messages(), 40.0);
        assert!((r.mean_coverage() - (1.0 + 1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_incomplete() {
        let empty = SimulationReport::new(4, Vec::new());
        assert!(empty.mean().is_nan());
        assert!(empty.quantiles().is_none());
        let failed = SimulationReport::new(4, vec![rec(0, None, 1, 0)]);
        assert_eq!(failed.incomplete(), 1);
        assert_eq!(failed.p95(), None);
        assert_eq!(failed.max(), None);
    }
}
