//! The observer axis of the engine: streaming per-round metrics.
//!
//! Observers receive one callback per round and never need to buffer a
//! whole run: growth curves, phase structure, and delivery delays are all
//! accumulated incrementally. The engine creates one observer per trial
//! (via the factory given to
//! [`SimulationBuilder::observers`](crate::engine::SimulationBuilder::observers))
//! and returns them ordered by trial index, so parallel and serial runs
//! aggregate identically.

use dg_stats::{Quantiles, Summary};

use crate::engine::TrialRecord;
use crate::{EdgeDelta, Snapshot};

/// Everything an observer sees about one executed round.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    /// The (1-based) round that just completed; newly informed nodes
    /// carry this as their informed round.
    pub round: u32,
    /// The edge set `E_{t-1}` the round was executed over — always
    /// `Some` on the snapshot path; on the delta path it is materialized
    /// (lazily, from the incremental adjacency) only when the observer
    /// declares [`Observer::needs_snapshots`], and `None` otherwise.
    pub snapshot: Option<&'a Snapshot>,
    /// The round's edge churn — always `Some` on the delta path (the
    /// engine produces it anyway, so reading it is free), `None` on the
    /// snapshot path. Churn-metric observers (stationarity estimators,
    /// interval connectivity) consume this instead of forcing snapshot
    /// materialization via [`Observer::needs_snapshots`].
    ///
    /// Per the delta contract, the first round's delta of a trial is a
    /// full emission: it carries all of `E_0` as
    /// [`added`](EdgeDelta::added) relative to the empty graph.
    pub delta: Option<&'a EdgeDelta>,
    /// Nodes informed this round, in transmission order (the order is
    /// stepping-path-dependent; membership and counts are not).
    pub newly_informed: &'a [u32],
    /// `|I_t|` after this round.
    pub informed_count: usize,
    /// Messages transmitted this round.
    pub messages: u64,
}

/// A streaming consumer of per-round simulation events.
///
/// All methods default to no-ops, so observers implement only what they
/// need. Tuples of observers compose: `(PhaseObserver::new(), DelayObserver::new())`.
pub trait Observer: Send {
    /// `true` if this observer reads [`RoundCtx::snapshot`]. On the
    /// delta stepping path the engine materializes a CSR snapshot per
    /// round *only* for observers that ask for it; returning `false`
    /// (the default) keeps the per-round cost proportional to churn.
    fn needs_snapshots(&self) -> bool {
        false
    }

    /// A trial is starting: `n` nodes, `sources` informed at round 0.
    fn on_trial_start(&mut self, trial: usize, n: usize, sources: &[u32]) {
        let _ = (trial, n, sources);
    }

    /// One round completed.
    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        let _ = ctx;
    }

    /// The trial finished (completed, capped, or quiescent).
    fn on_trial_end(&mut self, record: &TrialRecord) {
        let _ = record;
    }
}

impl Observer for () {}

impl<A: Observer, B: Observer> Observer for (A, B) {
    fn needs_snapshots(&self) -> bool {
        self.0.needs_snapshots() || self.1.needs_snapshots()
    }
    fn on_trial_start(&mut self, trial: usize, n: usize, sources: &[u32]) {
        self.0.on_trial_start(trial, n, sources);
        self.1.on_trial_start(trial, n, sources);
    }
    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        self.0.on_round(ctx);
        self.1.on_round(ctx);
    }
    fn on_trial_end(&mut self, record: &TrialRecord) {
        self.0.on_trial_end(record);
        self.1.on_trial_end(record);
    }
}

impl<A: Observer, B: Observer, C: Observer> Observer for (A, B, C) {
    fn needs_snapshots(&self) -> bool {
        self.0.needs_snapshots() || self.1.needs_snapshots() || self.2.needs_snapshots()
    }
    fn on_trial_start(&mut self, trial: usize, n: usize, sources: &[u32]) {
        self.0.on_trial_start(trial, n, sources);
        self.1.on_trial_start(trial, n, sources);
        self.2.on_trial_start(trial, n, sources);
    }
    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        self.0.on_round(ctx);
        self.1.on_round(ctx);
        self.2.on_round(ctx);
    }
    fn on_trial_end(&mut self, record: &TrialRecord) {
        self.0.on_trial_end(record);
        self.1.on_trial_end(record);
        self.2.on_trial_end(record);
    }
}

/// Streams the mean growth curve `E[|I_t|]` across trials without
/// buffering per-trial curves.
///
/// Trials that end early (completed or quiescent) are padded with their
/// final informed count — an informed set never shrinks.
#[derive(Debug, Clone, Default)]
pub struct MeanGrowthObserver {
    node_count: usize,
    sums: Vec<f64>,
    finished: Vec<(u32, usize)>,
    trials: usize,
}

impl MeanGrowthObserver {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&mut self, round: u32, size: usize) {
        let slot = round as usize;
        if self.sums.len() <= slot {
            self.sums.resize(slot + 1, 0.0);
        }
        self.sums[slot] += size as f64;
    }

    /// The mean informed-set size per round, averaged over all observed
    /// trials (empty if no trial ran).
    pub fn mean_sizes(&self) -> Vec<f64> {
        if self.trials == 0 {
            return Vec::new();
        }
        let mut finished = self.finished.clone();
        finished.sort_unstable();
        let mut padded = 0.0;
        let mut cursor = 0;
        let mut out = Vec::with_capacity(self.sums.len());
        for (t, &sum) in self.sums.iter().enumerate() {
            while cursor < finished.len() && (finished[cursor].0 as usize) < t {
                padded += finished[cursor].1 as f64;
                cursor += 1;
            }
            out.push((sum + padded) / self.trials as f64);
        }
        out
    }

    /// Number of nodes of the observed processes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

impl Observer for MeanGrowthObserver {
    fn on_trial_start(&mut self, _trial: usize, n: usize, sources: &[u32]) {
        self.node_count = n;
        self.trials += 1;
        self.record(0, sources.len());
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        self.record(ctx.round, ctx.informed_count);
    }

    fn on_trial_end(&mut self, record: &TrialRecord) {
        self.finished.push((record.rounds, record.informed));
    }
}

/// Streams the Lemma 13/14 phase structure: per-trial spreading-phase
/// end (`|I_t| >= n/2`), saturation tail, doubling rounds and the
/// largest doubling gap — without buffering growth curves.
///
/// Mirrors [`crate::analysis::GrowthCurve`]'s definitions exactly; the
/// engine tests pin the two against each other.
#[derive(Debug, Clone, Default)]
pub struct PhaseObserver {
    node_count: usize,
    // Current-trial state.
    next_target: u64,
    doubling: Vec<u32>,
    spreading_end: Option<u32>,
    completion: Option<u32>,
    // Cross-trial accumulators.
    spreading: Summary,
    saturation: Summary,
    total: Summary,
    max_gap: Summary,
    example_doubling: Option<Vec<u32>>,
}

impl PhaseObserver {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn advance(&mut self, round: u32, size: usize) {
        while self.next_target <= self.node_count as u64 && size as u64 >= self.next_target {
            if self.next_target >= 2 {
                self.doubling.push(round);
            }
            self.next_target *= 2;
        }
        let half = (0.5 * self.node_count as f64).ceil() as usize;
        if self.spreading_end.is_none() && size >= half {
            self.spreading_end = Some(round);
        }
        if self.completion.is_none() && size == self.node_count {
            self.completion = Some(round);
        }
    }

    /// Summary of spreading-phase lengths over completed trials.
    pub fn spreading(&self) -> &Summary {
        &self.spreading
    }

    /// Summary of saturation-tail lengths over completed trials.
    pub fn saturation(&self) -> &Summary {
        &self.saturation
    }

    /// Summary of total completion times over completed trials.
    pub fn total(&self) -> &Summary {
        &self.total
    }

    /// Summary of per-trial maximum doubling gaps (Lemma 13 regime).
    pub fn max_doubling_gap(&self) -> &Summary {
        &self.max_gap
    }

    /// Doubling rounds of the first completed trial (for display).
    pub fn example_doubling_rounds(&self) -> Option<&[u32]> {
        self.example_doubling.as_deref()
    }
}

impl Observer for PhaseObserver {
    fn on_trial_start(&mut self, _trial: usize, n: usize, sources: &[u32]) {
        self.node_count = n;
        self.next_target = 1;
        self.doubling.clear();
        self.spreading_end = None;
        self.completion = None;
        self.advance(0, sources.len());
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        self.advance(ctx.round, ctx.informed_count);
    }

    fn on_trial_end(&mut self, _record: &TrialRecord) {
        if let (Some(se), Some(ct)) = (self.spreading_end, self.completion) {
            self.spreading.push(se as f64);
            self.saturation.push((ct - se) as f64);
            self.total.push(ct as f64);
            // Largest gap between consecutive doublings with targets
            // 2^k <= n/2 — the regime of Lemma 13 (matches
            // `GrowthCurve::max_doubling_gap`).
            let half = self.node_count as u64 / 2;
            if half >= 2 {
                let keep = half.ilog2() as usize;
                let rounds = &self.doubling[..self.doubling.len().min(keep)];
                if rounds.len() >= 2 {
                    if let Some(g) = rounds.windows(2).map(|w| w[1] - w[0]).max() {
                        self.max_gap.push(g as f64);
                    }
                }
            }
            if self.example_doubling.is_none() {
                self.example_doubling = Some(self.doubling.clone());
            }
        }
    }
}

/// Streams per-round edge churn from [`RoundCtx::delta`] — the
/// delta-native observer pattern: no snapshot is ever materialized
/// ([`Observer::needs_snapshots`] stays `false`), so observing churn on
/// the delta path costs `O(1)` per round.
///
/// The first observed round of each trial carries the full `E_0` as a
/// baseline emission (see the delta contract in [`crate::delta`]); it is
/// recorded separately as [`ChurnObserver::initial_edges`], so
/// [`ChurnObserver::churn`] summarizes genuine per-round churn only.
/// Rounds executed on the snapshot path (where no delta exists) are
/// counted in [`ChurnObserver::rounds_without_delta`].
///
/// # Examples
///
/// ```
/// use dynagraph::engine::{ChurnObserver, Simulation, Stepping};
/// use dynagraph::PeriodicEvolvingGraph;
/// use dg_graph::generators;
///
/// let graphs = [generators::path(8), generators::cycle(8)];
/// let (_, observers) = Simulation::builder()
///     .model(|_| PeriodicEvolvingGraph::new(&graphs).unwrap())
///     .trials(1)
///     .max_rounds(50)
///     .stepping(Stepping::Delta)
///     .observers(|_| ChurnObserver::new())
///     .run_observed();
/// let obs = &observers[0];
/// assert_eq!(obs.rounds_without_delta(), 0);
/// assert_eq!(obs.initial_edges().mean(), 7.0); // E_0 is the path
/// assert!(obs.churn().mean() > 0.0); // path <-> cycle churns every round
/// ```
#[derive(Debug, Clone)]
pub struct ChurnObserver {
    churn: Summary,
    added: u64,
    removed: u64,
    initial_edges: Summary,
    rounds_without_delta: u64,
    fresh_trial: bool,
}

impl Default for ChurnObserver {
    fn default() -> Self {
        ChurnObserver {
            churn: Summary::new(),
            added: 0,
            removed: 0,
            initial_edges: Summary::new(),
            rounds_without_delta: 0,
            // Start expecting a baseline emission even if the embedder
            // never forwards `on_trial_start` (composed observers).
            fresh_trial: true,
        }
    }
}

impl ChurnObserver {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summary of per-round churn (`|added| + |removed|`) across all
    /// observed rounds, excluding each trial's baseline emission.
    pub fn churn(&self) -> &Summary {
        &self.churn
    }

    /// Total edges added across observed rounds (baselines excluded).
    pub fn added(&self) -> u64 {
        self.added
    }

    /// Total edges removed across observed rounds.
    pub fn removed(&self) -> u64 {
        self.removed
    }

    /// Summary of `|E_0|` per trial (the baseline full emissions).
    pub fn initial_edges(&self) -> &Summary {
        &self.initial_edges
    }

    /// Rounds that carried no delta (snapshot-path rounds).
    pub fn rounds_without_delta(&self) -> u64 {
        self.rounds_without_delta
    }
}

impl Observer for ChurnObserver {
    fn on_trial_start(&mut self, _trial: usize, _n: usize, _sources: &[u32]) {
        self.fresh_trial = true;
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        let Some(delta) = ctx.delta else {
            self.rounds_without_delta += 1;
            return;
        };
        if self.fresh_trial {
            self.fresh_trial = false;
            self.initial_edges.push(delta.added().len() as f64);
            return;
        }
        self.churn.push(delta.churn() as f64);
        self.added += delta.added().len() as u64;
        self.removed += delta.removed().len() as u64;
    }
}

/// Streams per-node delivery delays (the round each node was informed)
/// across trials, for latency percentiles.
#[derive(Debug, Clone, Default)]
pub struct DelayObserver {
    node_count: usize,
    delays: Vec<f64>,
    uninformed: usize,
}

impl DelayObserver {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// All observed delivery delays (sources count as 0).
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// Nodes never informed across all trials.
    pub fn uninformed(&self) -> usize {
        self.uninformed
    }

    /// Order statistics of the delays; `None` if nothing was delivered.
    pub fn quantiles(&self) -> Option<Quantiles> {
        Quantiles::try_new(self.delays.clone())
    }
}

impl Observer for DelayObserver {
    fn on_trial_start(&mut self, _trial: usize, n: usize, sources: &[u32]) {
        self.node_count = n;
        self.delays.extend(sources.iter().map(|_| 0.0));
    }

    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        self.delays
            .extend(ctx.newly_informed.iter().map(|_| ctx.round as f64));
    }

    fn on_trial_end(&mut self, record: &TrialRecord) {
        self.uninformed += self.node_count.saturating_sub(record.informed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        round: u32,
        snapshot: &'a Snapshot,
        newly: &'a [u32],
        informed: usize,
    ) -> RoundCtx<'a> {
        RoundCtx {
            round,
            snapshot: Some(snapshot),
            delta: None,
            newly_informed: newly,
            informed_count: informed,
            messages: newly.len() as u64,
        }
    }

    #[test]
    fn churn_observer_separates_baseline_from_churn() {
        let mut obs = ChurnObserver::new();
        let mut d = EdgeDelta::new();
        obs.on_trial_start(0, 4, &[0]);
        d.record_full([(0, 1), (1, 2), (2, 3)]);
        obs.on_round(&RoundCtx {
            round: 1,
            snapshot: None,
            delta: Some(&d),
            newly_informed: &[1],
            informed_count: 2,
            messages: 1,
        });
        d.begin_round();
        d.push_removed((2, 3));
        d.push_added((0, 2));
        d.push_added((0, 3));
        obs.on_round(&RoundCtx {
            round: 2,
            snapshot: None,
            delta: Some(&d),
            newly_informed: &[2, 3],
            informed_count: 4,
            messages: 2,
        });
        assert_eq!(obs.initial_edges().mean(), 3.0);
        assert_eq!(obs.churn().mean(), 3.0);
        assert_eq!(obs.added(), 2);
        assert_eq!(obs.removed(), 1);
        assert_eq!(obs.rounds_without_delta(), 0);
        // Snapshot-path rounds carry no delta and are tallied apart.
        let snap = Snapshot::empty(4);
        obs.on_round(&ctx(3, &snap, &[], 4));
        assert_eq!(obs.rounds_without_delta(), 1);
    }

    #[test]
    fn mean_growth_pads_finished_trials() {
        let snap = Snapshot::empty(4);
        let mut obs = MeanGrowthObserver::new();
        // Trial 0: completes at round 1 with all 4 informed.
        obs.on_trial_start(0, 4, &[0]);
        obs.on_round(&ctx(1, &snap, &[1, 2, 3], 4));
        obs.on_trial_end(&TrialRecord {
            trial: 0,
            seed: 0,
            time: Some(1),
            informed: 4,
            rounds: 1,
            messages: 3,
        });
        // Trial 1: takes 2 rounds.
        obs.on_trial_start(1, 4, &[0]);
        obs.on_round(&ctx(1, &snap, &[1], 2));
        obs.on_round(&ctx(2, &snap, &[2, 3], 4));
        obs.on_trial_end(&TrialRecord {
            trial: 1,
            seed: 1,
            time: Some(2),
            informed: 4,
            rounds: 2,
            messages: 3,
        });
        // Round 2: trial 0 padded at 4 => mean (4 + 4)/2.
        assert_eq!(obs.mean_sizes(), vec![1.0, 3.0, 4.0]);
    }

    #[test]
    fn phase_observer_matches_growth_curve() {
        use crate::analysis::GrowthCurve;
        let sizes = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let snap = Snapshot::empty(8);
        let mut obs = PhaseObserver::new();
        obs.on_trial_start(0, 8, &[0]);
        for (t, &s) in sizes.iter().enumerate().skip(1) {
            obs.on_round(&ctx(t as u32, &snap, &[], s as usize));
        }
        obs.on_trial_end(&TrialRecord {
            trial: 0,
            seed: 0,
            time: Some(7),
            informed: 8,
            rounds: 7,
            messages: 0,
        });
        let curve = GrowthCurve::new(sizes.to_vec(), 8);
        assert_eq!(obs.total().mean(), 7.0);
        assert_eq!(
            obs.spreading().mean(),
            curve.spreading_phase_end().unwrap() as f64
        );
        assert_eq!(
            obs.max_doubling_gap().mean(),
            curve.max_doubling_gap().unwrap() as f64
        );
        assert_eq!(
            obs.example_doubling_rounds().unwrap(),
            curve.doubling_rounds().as_slice()
        );
    }

    #[test]
    fn delay_observer_collects() {
        let snap = Snapshot::empty(3);
        let mut obs = DelayObserver::new();
        obs.on_trial_start(0, 3, &[0]);
        obs.on_round(&ctx(1, &snap, &[1], 2));
        obs.on_round(&ctx(2, &snap, &[2], 3));
        assert_eq!(obs.delays(), &[0.0, 1.0, 2.0]);
        let q = obs.quantiles().unwrap();
        assert_eq!(q.max(), 2.0);
    }
}
