//! The builder-driven trial runner.

use crate::delta::{DynAdjacency, EdgeDelta};
use crate::engine::observer::{Observer, RoundCtx};
use crate::engine::protocol::{Protocol, ProtocolStatus, SpreadView, Transmissions};
use crate::engine::report::{SimulationReport, TrialRecord};
use crate::{mix_seed, EvolvingGraph};

/// Entry point to the engine; see [`Simulation::builder`].
#[derive(Debug, Clone, Copy)]
pub struct Simulation;

/// Which stepping pipeline drives each trial.
///
/// Both pipelines produce identical [`TrialRecord`]s for the built-in
/// protocols (the integration suite pins this, including message
/// counts); they differ only in per-round cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Stepping {
    /// Delta path for models advertising
    /// [`EvolvingGraph::has_native_deltas`], snapshot path otherwise
    /// (the default).
    #[default]
    Auto,
    /// Always rebuild a CSR [`crate::Snapshot`] per round (the classic
    /// pipeline; also the reference the delta path is tested against).
    Snapshot,
    /// Always drive [`EvolvingGraph::step_delta`] through a
    /// [`DynAdjacency`]: per-round cost proportional to churn plus
    /// frontier work. Works for every model (non-native models diff
    /// their snapshots), pays off for slow-churn ones.
    Delta,
}

/// Placeholder model of a freshly created builder — replaced by the
/// first call to [`SimulationBuilder::model`].
#[derive(Debug, Clone, Copy)]
pub struct NoModel;

fn no_observers(_trial: usize) {}

impl Simulation {
    /// Starts configuring a simulation. Defaults: [`Flooding`] protocol,
    /// 30 trials, `max_rounds = 100_000`, no warm-up, source node 0,
    /// base seed `0xD15E_A5E0`, no observers, parallel execution (when
    /// the `parallel` feature is on).
    ///
    /// [`Flooding`]: crate::engine::Flooding
    pub fn builder() -> SimulationBuilder<NoModel, crate::engine::Flooding, fn(usize)> {
        SimulationBuilder {
            model: NoModel,
            protocol: crate::engine::Flooding::new(),
            observers: no_observers,
            trials: 30,
            max_rounds: 100_000,
            warm_up: 0,
            base_seed: 0xD15E_A5E0,
            sources: vec![0],
            parallel: true,
            threads: None,
            stepping: Stepping::Auto,
        }
    }
}

/// Builder for a spreading Monte-Carlo: model × protocol × observers,
/// plus trial bookkeeping. Construct with [`Simulation::builder`].
///
/// # Determinism
///
/// Trial `i` derives its seed as `mix_seed(base_seed, i)`; the model
/// factory, the protocol RNG, and nothing else consume randomness from
/// it. Aggregation is ordered by trial index, so [`SimulationBuilder::run`]
/// returns identical reports for identical configurations regardless of
/// the `parallel` setting or thread scheduling.
#[derive(Debug, Clone)]
pub struct SimulationBuilder<M, P, F> {
    model: M,
    protocol: P,
    observers: F,
    trials: usize,
    max_rounds: u32,
    warm_up: usize,
    base_seed: u64,
    sources: Vec<u32>,
    parallel: bool,
    threads: Option<usize>,
    stepping: Stepping,
}

impl<M, P, F> SimulationBuilder<M, P, F> {
    /// Sets the model factory: `make(seed)` must build a fresh process
    /// whose randomness is fully determined by `seed`.
    pub fn model<G, M2>(self, model: M2) -> SimulationBuilder<M2, P, F>
    where
        G: EvolvingGraph,
        M2: Fn(u64) -> G,
    {
        SimulationBuilder {
            model,
            protocol: self.protocol,
            observers: self.observers,
            trials: self.trials,
            max_rounds: self.max_rounds,
            warm_up: self.warm_up,
            base_seed: self.base_seed,
            sources: self.sources,
            parallel: self.parallel,
            threads: self.threads,
            stepping: self.stepping,
        }
    }

    /// Sets the transmission protocol (default: flooding).
    pub fn protocol<P2: Protocol>(self, protocol: P2) -> SimulationBuilder<M, P2, F> {
        SimulationBuilder {
            model: self.model,
            protocol,
            observers: self.observers,
            trials: self.trials,
            max_rounds: self.max_rounds,
            warm_up: self.warm_up,
            base_seed: self.base_seed,
            sources: self.sources,
            parallel: self.parallel,
            threads: self.threads,
            stepping: self.stepping,
        }
    }

    /// Installs a per-trial observer factory; the observers are returned
    /// by [`SimulationBuilder::run_observed`], ordered by trial index.
    pub fn observers<O, F2>(self, observers: F2) -> SimulationBuilder<M, P, F2>
    where
        O: Observer,
        F2: Fn(usize) -> O,
    {
        SimulationBuilder {
            model: self.model,
            protocol: self.protocol,
            observers,
            trials: self.trials,
            max_rounds: self.max_rounds,
            warm_up: self.warm_up,
            base_seed: self.base_seed,
            sources: self.sources,
            parallel: self.parallel,
            threads: self.threads,
            stepping: self.stepping,
        }
    }

    /// Number of independent trials (default 30).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Per-trial round cap (default 100 000).
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Rounds to advance each process before the protocol starts, to
    /// reach stationarity (default 0).
    pub fn warm_up(mut self, warm_up: usize) -> Self {
        self.warm_up = warm_up;
        self
    }

    /// Base seed; trial `i` uses `mix_seed(base_seed, i)`.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Single spreading source (default node 0).
    pub fn source(mut self, source: u32) -> Self {
        self.sources = vec![source];
        self
    }

    /// Multiple sources — `I_0` is the whole set (k-source broadcast).
    ///
    /// # Panics
    ///
    /// [`SimulationBuilder::run`] panics if the set is empty, contains
    /// duplicates, or contains an out-of-range node.
    pub fn sources<I: IntoIterator<Item = u32>>(mut self, sources: I) -> Self {
        self.sources = sources.into_iter().collect();
        self
    }

    /// Enables/disables parallel trial execution (default enabled; a
    /// no-op unless the `parallel` feature is compiled in).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Caps the worker-thread count (default: all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects the stepping pipeline (default: [`Stepping::Auto`] —
    /// delta-native models run on the delta path, everything else on the
    /// snapshot path). Results are identical either way; only the
    /// per-round cost differs.
    pub fn stepping(mut self, stepping: Stepping) -> Self {
        self.stepping = stepping;
        self
    }
}

impl<M, G, P, F, O> SimulationBuilder<M, P, F>
where
    M: Fn(u64) -> G,
    G: EvolvingGraph,
    P: Protocol + Clone,
    F: Fn(usize) -> O,
    O: Observer,
{
    /// Runs exactly one trial of this configuration — the hook for
    /// *externally scheduled* trials, where something other than
    /// [`SimulationBuilder::run`] decides how many trials a
    /// configuration gets (the adaptive scheduler in [`crate::sweep`]
    /// flattens many configurations' trials into one work pool).
    ///
    /// The trial is identical to what `run()` would execute at index
    /// `trial`: same `mix_seed(base_seed, trial)` derivation, same
    /// stepping-path selection — so collecting `run_trial(0..k)` equals
    /// the first `k` records of a `trials(k)` batch, and an external
    /// scheduler is byte-compatible with the engine's own loop.
    ///
    /// # Panics
    ///
    /// Panics if the source set is invalid for the model's node count.
    pub fn run_trial(&self, trial: usize) -> TrialRecord {
        assert!(!self.sources.is_empty(), "need at least one source");
        self.run_single(trial).0
    }

    /// The shared per-trial body of [`SimulationBuilder::run_trial`] and
    /// the (possibly parallel) batch loop.
    fn run_single(&self, trial: usize) -> (TrialRecord, O, usize) {
        let seed = mix_seed(self.base_seed, trial as u64);
        let mut g = (self.model)(seed);
        if self.warm_up > 0 {
            g.warm_up(self.warm_up);
        }
        let n = g.node_count();
        let mut protocol = self.protocol.clone();
        let mut observer = (self.observers)(trial);
        let use_delta = match self.stepping {
            Stepping::Auto => g.has_native_deltas(),
            Stepping::Snapshot => false,
            Stepping::Delta => true,
        };
        let record = if use_delta {
            execute_trial_delta(
                &mut g,
                &mut protocol,
                &mut observer,
                trial,
                seed,
                &self.sources,
                self.max_rounds,
            )
        } else {
            execute_trial(
                &mut g,
                &mut protocol,
                &mut observer,
                trial,
                seed,
                &self.sources,
                self.max_rounds,
            )
        };
        (record, observer, n)
    }
}

impl<M, G, P, F, O> SimulationBuilder<M, P, F>
where
    M: Fn(u64) -> G + Sync,
    G: EvolvingGraph,
    P: Protocol + Clone + Sync,
    F: Fn(usize) -> O + Sync,
    O: Observer,
{
    /// Runs all trials and aggregates their outcomes.
    ///
    /// # Panics
    ///
    /// Panics if the source set is invalid for the model's node count or
    /// a worker thread panics.
    pub fn run(self) -> SimulationReport {
        self.run_observed().0
    }

    /// Runs all trials, returning the report plus the per-trial
    /// observers (ordered by trial index).
    pub fn run_observed(self) -> (SimulationReport, Vec<O>) {
        assert!(!self.sources.is_empty(), "need at least one source");
        let trials = self.trials;
        let mut slots: Vec<Option<(TrialRecord, O, usize)>> = Vec::with_capacity(trials);
        slots.resize_with(trials, || None);

        let run_one = |trial: usize| -> (TrialRecord, O, usize) { self.run_single(trial) };

        let threads = self.worker_count();
        if threads <= 1 {
            for (trial, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_one(trial));
            }
        } else {
            #[cfg(feature = "parallel")]
            {
                let chunk_size = trials.div_ceil(threads).max(1);
                let run_one = &run_one;
                std::thread::scope(|scope| {
                    for (chunk_idx, chunk) in slots.chunks_mut(chunk_size).enumerate() {
                        scope.spawn(move || {
                            for (offset, slot) in chunk.iter_mut().enumerate() {
                                *slot = Some(run_one(chunk_idx * chunk_size + offset));
                            }
                        });
                    }
                });
            }
            #[cfg(not(feature = "parallel"))]
            {
                for (trial, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(run_one(trial));
                }
            }
        }

        let mut records = Vec::with_capacity(trials);
        let mut observers = Vec::with_capacity(trials);
        let mut node_count = 0;
        for slot in slots {
            let (record, observer, n) = slot.expect("every trial slot is filled");
            node_count = n;
            records.push(record);
            observers.push(observer);
        }
        (SimulationReport::new(node_count, records), observers)
    }

    fn worker_count(&self) -> usize {
        if !cfg!(feature = "parallel") || !self.parallel || self.trials <= 1 {
            return 1;
        }
        let available = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        available
            .min(self.threads.unwrap_or(usize::MAX))
            .min(self.trials)
            .max(1)
    }
}

/// Executes one trial: seeds, sources, the synchronous round loop,
/// quiescence, and the observer callbacks. Shared by every protocol.
fn execute_trial<G, P, O>(
    g: &mut G,
    protocol: &mut P,
    observer: &mut O,
    trial: usize,
    seed: u64,
    sources: &[u32],
    max_rounds: u32,
) -> TrialRecord
where
    G: EvolvingGraph + ?Sized,
    P: Protocol + ?Sized,
    O: Observer + ?Sized,
{
    let n = g.node_count();
    let mut informed = vec![false; n];
    let mut informed_at: Vec<Option<u32>> = vec![None; n];
    let mut informed_list: Vec<u32> = Vec::with_capacity(n);
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        assert!(!informed[s as usize], "duplicate source {s}");
        informed[s as usize] = true;
        informed_at[s as usize] = Some(0);
        informed_list.push(s);
    }
    observer.on_trial_start(trial, n, sources);
    protocol.begin_trial(n, seed);

    let mut completed = (informed_list.len() == n).then_some(0u32);
    let mut messages_total = 0u64;
    let mut new_nodes: Vec<u32> = Vec::new();
    let mut t = 0u32;
    let mut status = ProtocolStatus::Active;
    while completed.is_none() && t < max_rounds && status == ProtocolStatus::Active {
        let snap = g.step();
        new_nodes.clear();
        let round_messages = {
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at: &informed_at,
                informed_list: &informed_list,
            };
            let mut out = Transmissions::new(&mut informed, &mut new_nodes);
            protocol.transmit(snap, &view, &mut out);
            out.messages()
        };
        t += 1;
        for &v in &new_nodes {
            informed_at[v as usize] = Some(t);
        }
        informed_list.extend_from_slice(&new_nodes);
        messages_total += round_messages;
        if informed_list.len() == n {
            completed = Some(t);
        }
        observer.on_round(&RoundCtx {
            round: t,
            snapshot: Some(snap),
            delta: None,
            newly_informed: &new_nodes,
            informed_count: informed_list.len(),
            messages: round_messages,
        });
        if completed.is_none() {
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at: &informed_at,
                informed_list: &informed_list,
            };
            status = protocol.end_round(&view);
        }
    }

    let record = TrialRecord {
        trial,
        seed,
        time: completed,
        informed: informed_list.len(),
        rounds: t,
        messages: messages_total,
    };
    observer.on_trial_end(&record);
    record
}

/// The delta-path twin of [`execute_trial`]: steps the process through
/// [`EvolvingGraph::step_delta`] into a [`DynAdjacency`] and hands the
/// incremental state to [`Protocol::transmit_delta`]. A CSR snapshot is
/// materialized per round only when the observer asks for one, so the
/// per-round cost of a churn-proportional model + protocol stays
/// churn-proportional end to end.
///
/// Produces [`TrialRecord`]s identical to [`execute_trial`]'s for the
/// built-in protocols (pinned by the integration suite).
fn execute_trial_delta<G, P, O>(
    g: &mut G,
    protocol: &mut P,
    observer: &mut O,
    trial: usize,
    seed: u64,
    sources: &[u32],
    max_rounds: u32,
) -> TrialRecord
where
    G: EvolvingGraph + ?Sized,
    P: Protocol + ?Sized,
    O: Observer + ?Sized,
{
    let n = g.node_count();
    let mut informed = vec![false; n];
    let mut informed_at: Vec<Option<u32>> = vec![None; n];
    let mut informed_list: Vec<u32> = Vec::with_capacity(n);
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        assert!(!informed[s as usize], "duplicate source {s}");
        informed[s as usize] = true;
        informed_at[s as usize] = Some(0);
        informed_list.push(s);
    }
    observer.on_trial_start(trial, n, sources);
    protocol.begin_trial(n, seed);
    let needs_snapshots = observer.needs_snapshots();

    let mut adj = DynAdjacency::new(n);
    let mut delta = EdgeDelta::new();
    // The adjacency starts empty, so the delta stream must start with a
    // full emission (the model may have been warmed up or pre-stepped).
    g.rebase_deltas();

    let mut completed = (informed_list.len() == n).then_some(0u32);
    let mut messages_total = 0u64;
    let mut new_nodes: Vec<u32> = Vec::new();
    let mut t = 0u32;
    let mut status = ProtocolStatus::Active;
    while completed.is_none() && t < max_rounds && status == ProtocolStatus::Active {
        g.step_delta(&mut delta);
        adj.apply(&delta);
        new_nodes.clear();
        let round_messages = {
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at: &informed_at,
                informed_list: &informed_list,
            };
            let mut out = Transmissions::new(&mut informed, &mut new_nodes);
            protocol.transmit_delta(&mut adj, &delta, &view, &mut out);
            out.messages()
        };
        t += 1;
        for &v in &new_nodes {
            informed_at[v as usize] = Some(t);
        }
        informed_list.extend_from_slice(&new_nodes);
        messages_total += round_messages;
        if informed_list.len() == n {
            completed = Some(t);
        }
        observer.on_round(&RoundCtx {
            round: t,
            snapshot: if needs_snapshots {
                Some(adj.snapshot())
            } else {
                None
            },
            delta: Some(&delta),
            newly_informed: &new_nodes,
            informed_count: informed_list.len(),
            messages: round_messages,
        });
        if completed.is_none() {
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at: &informed_at,
                informed_list: &informed_list,
            };
            status = protocol.end_round(&view);
        }
    }

    let record = TrialRecord {
        trial,
        seed,
        time: completed,
        informed: informed_list.len(),
        rounds: t,
        messages: messages_total,
    };
    observer.on_trial_end(&record);
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Flooding, ParsimoniousFlooding, PushGossip};
    use crate::StaticEvolvingGraph;
    use dg_graph::generators;

    #[test]
    fn builder_defaults_flood_a_cycle() {
        let report = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::cycle(9)))
            .trials(4)
            .max_rounds(100)
            .run();
        assert_eq!(report.trials(), 4);
        assert_eq!(report.incomplete(), 0);
        assert_eq!(report.mean(), 4.0);
        assert_eq!(report.node_count(), 9);
    }

    #[test]
    fn reports_are_reproducible() {
        let make = || {
            Simulation::builder()
                .model(|_| StaticEvolvingGraph::new(generators::grid(4, 4)))
                .protocol(PushGossip::new(1))
                .trials(6)
                .max_rounds(10_000)
                .base_seed(42)
        };
        assert_eq!(make().run(), make().run());
    }

    #[test]
    fn parallel_matches_serial() {
        let make = |parallel| {
            Simulation::builder()
                .model(|_| StaticEvolvingGraph::new(generators::complete(16)))
                .protocol(PushGossip::new(1))
                .trials(9)
                .max_rounds(10_000)
                .parallel(parallel)
                .run()
        };
        assert_eq!(make(true), make(false));
    }

    #[test]
    fn multi_source_covers_faster() {
        let single = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::cycle(12)))
            .trials(1)
            .run();
        let multi = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::cycle(12)))
            .sources([0, 6])
            .trials(1)
            .run();
        assert!(multi.mean() < single.mean());
        assert_eq!(multi.mean(), 3.0);
    }

    #[test]
    fn quiescent_protocol_stops_early() {
        let report = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(dg_graph::GraphBuilder::new(4).build()))
            .protocol(ParsimoniousFlooding::new(2))
            .trials(1)
            .max_rounds(1_000)
            .run();
        let rec = &report.records()[0];
        assert_eq!(rec.time, None);
        assert_eq!(rec.informed, 1);
        assert!(rec.rounds <= 3, "stopped at round {}", rec.rounds);
    }

    #[test]
    fn flooding_messages_counted() {
        // K4 from one source: round 1 sends 3 messages, done.
        let report = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::complete(4)))
            .protocol(Flooding::new())
            .trials(1)
            .run();
        assert_eq!(report.records()[0].messages, 3);
        assert_eq!(report.records()[0].time, Some(1));
    }

    #[test]
    fn stepping_paths_agree_on_dynamic_process() {
        // A periodic process churns edges every round; all three built-in
        // protocols must report byte-identical records on both paths,
        // message counts included.
        let make_model = |_seed: u64| {
            let graphs = [
                generators::path(10),
                generators::cycle(10),
                generators::star(10),
            ];
            crate::PeriodicEvolvingGraph::new(&graphs).unwrap()
        };
        let flooding = |stepping| {
            Simulation::builder()
                .model(make_model)
                .trials(3)
                .max_rounds(200)
                .stepping(stepping)
                .run()
        };
        assert_eq!(flooding(Stepping::Snapshot), flooding(Stepping::Delta));
        let push = |stepping| {
            Simulation::builder()
                .model(make_model)
                .protocol(PushGossip::new(1))
                .trials(3)
                .max_rounds(2_000)
                .stepping(stepping)
                .run()
        };
        assert_eq!(push(Stepping::Snapshot), push(Stepping::Delta));
        let pars = |stepping| {
            Simulation::builder()
                .model(make_model)
                .protocol(ParsimoniousFlooding::new(1))
                .trials(3)
                .max_rounds(2_000)
                .stepping(stepping)
                .run()
        };
        assert_eq!(pars(Stepping::Snapshot), pars(Stepping::Delta));
    }

    #[test]
    fn delta_path_works_for_non_native_models_and_protocols() {
        // Forced delta stepping must also work for a model without native
        // deltas (default diffing) under a custom protocol without a
        // native transmit_delta (default CSR materialization).
        #[derive(Clone)]
        struct EveryOther;
        impl Protocol for EveryOther {
            fn name(&self) -> &'static str {
                "every-other"
            }
            fn transmit(
                &mut self,
                snap: &crate::Snapshot,
                view: &SpreadView<'_>,
                out: &mut Transmissions<'_>,
            ) {
                for &u in view.informed_list {
                    for &v in snap.neighbors(u) {
                        if v % 2 == 0 {
                            out.send(v);
                        }
                    }
                }
            }
        }
        let inner = StaticEvolvingGraph::new(generators::complete(9));
        let make =
            move |seed: u64| crate::ThinnedEvolvingGraph::new(inner.clone(), 0.7, seed).unwrap();
        let run = |stepping| {
            Simulation::builder()
                .model(make.clone())
                .protocol(EveryOther)
                .trials(4)
                .max_rounds(50)
                .stepping(stepping)
                .run()
        };
        assert_eq!(run(Stepping::Snapshot), run(Stepping::Delta));
    }

    #[test]
    fn delta_path_materializes_snapshots_for_observers_that_ask() {
        #[derive(Default)]
        struct EdgeCounter {
            per_round: Vec<usize>,
        }
        impl Observer for EdgeCounter {
            fn needs_snapshots(&self) -> bool {
                true
            }
            fn on_round(&mut self, ctx: &RoundCtx<'_>) {
                self.per_round
                    .push(ctx.snapshot.expect("asked for snapshots").edge_count());
            }
        }
        let graphs = [generators::path(8), generators::complete(8)];
        let run = |stepping| {
            Simulation::builder()
                .model(|_| crate::PeriodicEvolvingGraph::new(&graphs).unwrap())
                .trials(1)
                .max_rounds(100)
                .stepping(stepping)
                .observers(|_| EdgeCounter::default())
                .run_observed()
        };
        let (rep_s, obs_s) = run(Stepping::Snapshot);
        let (rep_d, obs_d) = run(Stepping::Delta);
        assert_eq!(rep_s, rep_d);
        assert_eq!(obs_s[0].per_round, obs_d[0].per_round);
        assert_eq!(obs_d[0].per_round[0], 7); // E_0 is the path
    }

    #[test]
    fn warmed_up_delta_trials_match_snapshot_trials() {
        let graphs = [generators::path(9), generators::star(9)];
        let run = |stepping| {
            Simulation::builder()
                .model(|_| crate::PeriodicEvolvingGraph::new(&graphs).unwrap())
                .trials(2)
                .warm_up(3)
                .max_rounds(100)
                .stepping(stepping)
                .run()
        };
        assert_eq!(run(Stepping::Snapshot), run(Stepping::Delta));
    }

    #[test]
    fn run_trial_matches_batch_records() {
        // Externally scheduled trials (the sweep hook) must reproduce the
        // batch loop record for record, protocol randomness included.
        let builder = || {
            Simulation::builder()
                .model(|_| StaticEvolvingGraph::new(generators::complete(12)))
                .protocol(PushGossip::new(1))
                .max_rounds(10_000)
                .base_seed(0x5EE9)
        };
        let batch = builder().trials(5).run();
        for (i, record) in batch.records().iter().enumerate() {
            assert_eq!(&builder().run_trial(i), record, "trial {i}");
        }
        // Indices beyond any batch size still work (pure function of i).
        assert_eq!(builder().run_trial(7).seed, mix_seed(0x5EE9, 7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let _ = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::path(3)))
            .source(3)
            .trials(1)
            .run();
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panics() {
        let _ = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::path(3)))
            .sources([])
            .trials(1)
            .run();
    }
}
