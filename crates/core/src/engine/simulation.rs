//! The builder-driven trial runner.

use crate::delta::{DynAdjacency, EdgeDelta};
use crate::engine::instrument::engine_obs;
use crate::engine::observer::{Observer, RoundCtx};
use crate::engine::protocol::{Protocol, ProtocolStatus, SpreadView, Transmissions};
use crate::engine::report::{SimulationReport, TrialRecord};
use crate::shard::{flood_sharded_core, ShardScratch, Shards};
use crate::{mix_seed, EvolvingGraph};

/// Entry point to the engine; see [`Simulation::builder`].
#[derive(Debug, Clone, Copy)]
pub struct Simulation;

/// Which stepping pipeline drives each trial.
///
/// Both pipelines produce identical [`TrialRecord`]s for the built-in
/// protocols (the integration suite pins this, including message
/// counts); they differ only in per-round cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Stepping {
    /// Delta path for models advertising
    /// [`EvolvingGraph::has_native_deltas`], snapshot path otherwise
    /// (the default).
    #[default]
    Auto,
    /// Always rebuild a CSR [`crate::Snapshot`] per round (the classic
    /// pipeline; also the reference the delta path is tested against).
    Snapshot,
    /// Always drive [`EvolvingGraph::step_delta`] through a
    /// [`DynAdjacency`]: per-round cost proportional to churn plus
    /// frontier work. Works for every model (non-native models diff
    /// their snapshots), pays off for slow-churn ones.
    Delta,
}

/// Placeholder model of a freshly created builder — replaced by the
/// first call to [`SimulationBuilder::model`].
#[derive(Debug, Clone, Copy)]
pub struct NoModel;

fn no_observers(_trial: usize) {}

impl Simulation {
    /// Starts configuring a simulation. Defaults: [`Flooding`] protocol,
    /// 30 trials, `max_rounds = 100_000`, no warm-up, source node 0,
    /// base seed `0xD15E_A5E0`, no observers, parallel execution (when
    /// the `parallel` feature is on), per-worker model reuse.
    ///
    /// [`Flooding`]: crate::engine::Flooding
    pub fn builder() -> SimulationBuilder<NoModel, crate::engine::Flooding, fn(usize)> {
        SimulationBuilder {
            model: NoModel,
            protocol: crate::engine::Flooding::new(),
            observers: no_observers,
            trials: 30,
            max_rounds: 100_000,
            warm_up: 0,
            base_seed: 0xD15E_A5E0,
            sources: vec![0],
            parallel: true,
            threads: None,
            stepping: Stepping::Auto,
            shards: Shards::Fixed(1),
            reuse_models: true,
        }
    }
}

/// Reusable per-worker trial state: the spreading buffers and delta-path
/// structures of one trial, *cleared* — never reallocated — between
/// trials.
///
/// The batch loop ([`SimulationBuilder::run`]) keeps one scratch per
/// worker thread automatically; external schedulers opt in by holding a
/// scratch (plus a model slot) and calling
/// [`SimulationBuilder::run_trial_with`]. Buffers grow to the largest
/// trial seen and are retained, so steady-state trial setup allocates
/// nothing; a scratch may be reused across differently-sized models
/// (each trial re-targets the buffers at its own node count).
#[derive(Debug, Default)]
pub struct TrialScratch {
    informed: Vec<bool>,
    informed_at: Vec<u32>,
    informed_list: Vec<u32>,
    new_nodes: Vec<u32>,
    adj: DynAdjacency,
    delta: EdgeDelta,
    shard: ShardScratch,
}

impl TrialScratch {
    /// A fresh scratch; buffers grow on first use and are kept.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the spreading buffers for a trial over `n` nodes.
    fn prepare(&mut self, n: usize) {
        if self.informed.capacity() < n {
            engine_obs().scratch_grow.inc();
        }
        self.informed.clear();
        self.informed.resize(n, false);
        self.informed_at.clear();
        self.informed_at.resize(n, SpreadView::UNINFORMED);
        self.informed_list.clear();
        self.informed_list.reserve(n);
        self.new_nodes.clear();
    }
}

/// Builder for a spreading Monte-Carlo: model × protocol × observers,
/// plus trial bookkeeping. Construct with [`Simulation::builder`].
///
/// # Determinism
///
/// Trial `i` derives its seed as `mix_seed(base_seed, i)`; the model
/// factory, the protocol RNG, and nothing else consume randomness from
/// it. Aggregation is ordered by trial index, so [`SimulationBuilder::run`]
/// returns identical reports for identical configurations regardless of
/// the `parallel` setting or thread scheduling.
#[derive(Debug, Clone)]
pub struct SimulationBuilder<M, P, F> {
    model: M,
    protocol: P,
    observers: F,
    trials: usize,
    max_rounds: u32,
    warm_up: usize,
    base_seed: u64,
    sources: Vec<u32>,
    parallel: bool,
    threads: Option<usize>,
    stepping: Stepping,
    shards: Shards,
    reuse_models: bool,
}

impl<M, P, F> SimulationBuilder<M, P, F> {
    /// Sets the model factory: `make(seed)` must build a fresh process
    /// whose randomness is fully determined by `seed`.
    ///
    /// # The reuse contract
    ///
    /// With model reuse on (the default), each worker calls the factory
    /// **once** and re-randomizes its instance between trials via
    /// [`EvolvingGraph::reset`]. This is byte-identical to fresh
    /// construction exactly when `make(s)` is observably identical to
    /// `make(s0)` followed by `reset(s)` for any `s0` — true whenever
    /// the factory routes all of its randomness through the seed
    /// argument of constructors honoring the [`EvolvingGraph::reset`]
    /// contract (every model in this workspace does; the cross-crate
    /// property suites pin it). A factory that derives seed-dependent
    /// state *outside* that contract — e.g. a wrapper whose inner model
    /// is seeded with a different derivation than its `reset` uses —
    /// must opt out with [`SimulationBuilder::reuse_models`]`(false)`.
    pub fn model<G, M2>(self, model: M2) -> SimulationBuilder<M2, P, F>
    where
        G: EvolvingGraph,
        M2: Fn(u64) -> G,
    {
        SimulationBuilder {
            model,
            protocol: self.protocol,
            observers: self.observers,
            trials: self.trials,
            max_rounds: self.max_rounds,
            warm_up: self.warm_up,
            base_seed: self.base_seed,
            sources: self.sources,
            parallel: self.parallel,
            threads: self.threads,
            stepping: self.stepping,
            shards: self.shards,
            reuse_models: self.reuse_models,
        }
    }

    /// Sets the transmission protocol (default: flooding).
    pub fn protocol<P2: Protocol>(self, protocol: P2) -> SimulationBuilder<M, P2, F> {
        SimulationBuilder {
            model: self.model,
            protocol,
            observers: self.observers,
            trials: self.trials,
            max_rounds: self.max_rounds,
            warm_up: self.warm_up,
            base_seed: self.base_seed,
            sources: self.sources,
            parallel: self.parallel,
            threads: self.threads,
            stepping: self.stepping,
            shards: self.shards,
            reuse_models: self.reuse_models,
        }
    }

    /// Installs a per-trial observer factory; the observers are returned
    /// by [`SimulationBuilder::run_observed`], ordered by trial index.
    pub fn observers<O, F2>(self, observers: F2) -> SimulationBuilder<M, P, F2>
    where
        O: Observer,
        F2: Fn(usize) -> O,
    {
        SimulationBuilder {
            model: self.model,
            protocol: self.protocol,
            observers,
            trials: self.trials,
            max_rounds: self.max_rounds,
            warm_up: self.warm_up,
            base_seed: self.base_seed,
            sources: self.sources,
            parallel: self.parallel,
            threads: self.threads,
            stepping: self.stepping,
            shards: self.shards,
            reuse_models: self.reuse_models,
        }
    }

    /// Number of independent trials (default 30).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Per-trial round cap (default 100 000).
    ///
    /// # Panics
    ///
    /// Panics on `u32::MAX`: round numbers double as informed-round
    /// values, whose uninformed sentinel is
    /// [`SpreadView::UNINFORMED`](crate::engine::SpreadView::UNINFORMED)
    /// (= `u32::MAX`), so the cap must leave it unreachable.
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        assert!(
            max_rounds < u32::MAX,
            "max_rounds must be below u32::MAX (the UNINFORMED sentinel)"
        );
        self.max_rounds = max_rounds;
        self
    }

    /// Rounds to advance each process before the protocol starts, to
    /// reach stationarity (default 0).
    pub fn warm_up(mut self, warm_up: usize) -> Self {
        self.warm_up = warm_up;
        self
    }

    /// Base seed; trial `i` uses `mix_seed(base_seed, i)`.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Single spreading source (default node 0).
    pub fn source(mut self, source: u32) -> Self {
        self.sources = vec![source];
        self
    }

    /// Multiple sources — `I_0` is the whole set (k-source broadcast).
    ///
    /// # Panics
    ///
    /// [`SimulationBuilder::run`] panics if the set is empty, contains
    /// duplicates, or contains an out-of-range node.
    pub fn sources<I: IntoIterator<Item = u32>>(mut self, sources: I) -> Self {
        self.sources = sources.into_iter().collect();
        self
    }

    /// Enables/disables parallel trial execution (default enabled; a
    /// no-op unless the `parallel` feature is compiled in).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Caps the worker-thread count (default: all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects the stepping pipeline (default: [`Stepping::Auto`] —
    /// delta-native models run on the delta path, everything else on the
    /// snapshot path). Results are identical either way; only the
    /// per-round cost differs.
    pub fn stepping(mut self, stepping: Stepping) -> Self {
        self.stepping = stepping;
        self
    }

    /// Intra-trial sharding: how many threads execute a *single* trial's
    /// round loop (default `Shards::Fixed(1)` — the serial round loop).
    /// Accepts a plain count (`.shards(8)`) or [`Shards::Auto`] for one
    /// thread per core.
    ///
    /// Takes effect only for trials that run on the delta path with a
    /// protocol supporting sharded execution
    /// ([`Protocol::supports_sharded_flooding`]) over a model exposing a
    /// lane decomposition ([`EvolvingGraph::sharding`]); anything else
    /// silently keeps its serial round loop. When engaged, records and
    /// observer callbacks are byte-identical to the serial path for
    /// every shard count — only the wall-clock of a single trial
    /// changes. Composes with trial-level parallelism: the engine's
    /// workers each run their trials sharded.
    pub fn shards(mut self, shards: impl Into<Shards>) -> Self {
        self.shards = shards.into();
        self
    }

    /// Enables/disables per-worker model reuse (default enabled): each
    /// worker constructs its model once and re-randomizes it in place
    /// via [`EvolvingGraph::reset`] between trials, making trial setup
    /// allocation-free. Results are byte-identical to fresh
    /// construction for factories satisfying the reuse contract (see
    /// [`SimulationBuilder::model`]); disable for factories that don't.
    pub fn reuse_models(mut self, reuse_models: bool) -> Self {
        self.reuse_models = reuse_models;
        self
    }
}

impl<M, G, P, F, O> SimulationBuilder<M, P, F>
where
    M: Fn(u64) -> G,
    G: EvolvingGraph,
    P: Protocol + Clone,
    F: Fn(usize) -> O,
    O: Observer,
{
    /// Runs exactly one trial of this configuration — the hook for
    /// *externally scheduled* trials, where something other than
    /// [`SimulationBuilder::run`] decides how many trials a
    /// configuration gets (the adaptive scheduler in [`crate::sweep`]
    /// flattens many configurations' trials into one work pool).
    ///
    /// The trial is identical to what `run()` would execute at index
    /// `trial`: same `mix_seed(base_seed, trial)` derivation, same
    /// stepping-path selection — so collecting `run_trial(0..k)` equals
    /// the first `k` records of a `trials(k)` batch, and an external
    /// scheduler is byte-compatible with the engine's own loop.
    ///
    /// # Panics
    ///
    /// Panics if the source set is invalid for the model's node count.
    pub fn run_trial(&self, trial: usize) -> TrialRecord {
        assert!(!self.sources.is_empty(), "need at least one source");
        self.run_single(trial, &mut None, &mut TrialScratch::new())
            .0
    }

    /// [`SimulationBuilder::run_trial`] with caller-held reuse state —
    /// the zero-rebuild hook for external schedulers.
    ///
    /// `model` is a per-configuration model slot: on the first call it
    /// is filled via the factory; afterwards the cached instance is
    /// re-randomized in place with [`EvolvingGraph::reset`] (unless
    /// [`SimulationBuilder::reuse_models`] is off, in which case every
    /// call constructs fresh into the slot). `scratch` holds the trial's
    /// spreading buffers and may be shared across *different*
    /// configurations (it re-targets itself per trial); the model slot
    /// must not be. Under the reuse contract (see
    /// [`SimulationBuilder::model`]) the record is byte-identical to
    /// [`SimulationBuilder::run_trial`]'s — pinned by the engine tests.
    ///
    /// # Panics
    ///
    /// Panics if the source set is invalid for the model's node count.
    pub fn run_trial_with(
        &self,
        trial: usize,
        model: &mut Option<G>,
        scratch: &mut TrialScratch,
    ) -> TrialRecord {
        assert!(!self.sources.is_empty(), "need at least one source");
        self.run_single(trial, model, scratch).0
    }

    /// The shared per-trial body of [`SimulationBuilder::run_trial`],
    /// [`SimulationBuilder::run_trial_with`] and the (possibly parallel)
    /// batch loop: fill or re-randomize the worker's model, then execute
    /// one trial over the reusable scratch.
    fn run_single(
        &self,
        trial: usize,
        model: &mut Option<G>,
        scratch: &mut TrialScratch,
    ) -> (TrialRecord, O, usize) {
        let seed = mix_seed(self.base_seed, trial as u64);
        let obs = engine_obs();
        obs.trials.inc();
        let g = match model {
            Some(g) if self.reuse_models => {
                obs.models_reused.inc();
                g.reset(seed);
                g
            }
            slot => {
                obs.models_built.inc();
                slot.insert((self.model)(seed))
            }
        };
        if self.warm_up > 0 {
            g.warm_up(self.warm_up);
        }
        let n = g.node_count();
        let mut protocol = self.protocol.clone();
        let mut observer = (self.observers)(trial);
        let use_delta = match self.stepping {
            Stepping::Auto => g.has_native_deltas(),
            Stepping::Snapshot => false,
            Stepping::Delta => true,
        };
        let sharded_threads = self.shards.resolve();
        let record = if use_delta
            && sharded_threads >= 2
            && protocol.supports_sharded_flooding()
            && g.sharding().is_some()
        {
            execute_trial_sharded(
                g,
                &mut observer,
                trial,
                seed,
                &self.sources,
                self.max_rounds,
                sharded_threads,
                scratch,
            )
        } else if use_delta {
            execute_trial_delta(
                g,
                &mut protocol,
                &mut observer,
                trial,
                seed,
                &self.sources,
                self.max_rounds,
                scratch,
            )
        } else {
            execute_trial(
                g,
                &mut protocol,
                &mut observer,
                trial,
                seed,
                &self.sources,
                self.max_rounds,
                scratch,
            )
        };
        (record, observer, n)
    }
}

impl<M, G, P, F, O> SimulationBuilder<M, P, F>
where
    M: Fn(u64) -> G + Sync,
    G: EvolvingGraph,
    P: Protocol + Clone + Sync,
    F: Fn(usize) -> O + Sync,
    O: Observer,
{
    /// Runs all trials and aggregates their outcomes.
    ///
    /// # Panics
    ///
    /// Panics if the source set is invalid for the model's node count or
    /// a worker thread panics.
    pub fn run(self) -> SimulationReport {
        self.run_observed().0
    }

    /// Runs all trials, returning the report plus the per-trial
    /// observers (ordered by trial index).
    pub fn run_observed(self) -> (SimulationReport, Vec<O>) {
        assert!(!self.sources.is_empty(), "need at least one source");
        let trials = self.trials;
        let mut slots: Vec<Option<(TrialRecord, O, usize)>> = Vec::with_capacity(trials);
        slots.resize_with(trials, || None);

        // One worker = one model + one scratch: the model is constructed
        // on the worker's first trial and re-randomized in place for the
        // rest (see the reuse contract on `SimulationBuilder::model`), so
        // per-trial setup allocates nothing after the first trial.
        let run_worker = |chunk: &mut [Option<(TrialRecord, O, usize)>], start: usize| {
            let mut model: Option<G> = None;
            let mut scratch = TrialScratch::new();
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(self.run_single(start + offset, &mut model, &mut scratch));
            }
        };

        let threads = self.worker_count();
        if threads <= 1 {
            run_worker(&mut slots, 0);
        } else {
            #[cfg(feature = "parallel")]
            {
                let chunk_size = trials.div_ceil(threads).max(1);
                let run_worker = &run_worker;
                std::thread::scope(|scope| {
                    for (chunk_idx, chunk) in slots.chunks_mut(chunk_size).enumerate() {
                        scope.spawn(move || run_worker(chunk, chunk_idx * chunk_size));
                    }
                });
            }
            #[cfg(not(feature = "parallel"))]
            {
                run_worker(&mut slots, 0);
            }
        }

        let mut records = Vec::with_capacity(trials);
        let mut observers = Vec::with_capacity(trials);
        let mut node_count = 0;
        for slot in slots {
            let (record, observer, n) = slot.expect("every trial slot is filled");
            node_count = n;
            records.push(record);
            observers.push(observer);
        }
        (SimulationReport::new(node_count, records), observers)
    }

    fn worker_count(&self) -> usize {
        if !cfg!(feature = "parallel") || !self.parallel || self.trials <= 1 {
            return 1;
        }
        let available = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        available
            .min(self.threads.unwrap_or(usize::MAX))
            .min(self.trials)
            .max(1)
    }
}

/// Executes one trial: seeds, sources, the synchronous round loop,
/// quiescence, and the observer callbacks. Shared by every protocol.
/// All per-trial state lives in `scratch` — cleared here, allocated
/// (at most) once per worker.
#[allow(clippy::too_many_arguments)] // internal twin of execute_trial_delta
fn execute_trial<G, P, O>(
    g: &mut G,
    protocol: &mut P,
    observer: &mut O,
    trial: usize,
    seed: u64,
    sources: &[u32],
    max_rounds: u32,
    scratch: &mut TrialScratch,
) -> TrialRecord
where
    G: EvolvingGraph + ?Sized,
    P: Protocol + ?Sized,
    O: Observer + ?Sized,
{
    let n = g.node_count();
    scratch.prepare(n);
    let TrialScratch {
        informed,
        informed_at,
        informed_list,
        new_nodes,
        ..
    } = scratch;
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        assert!(!informed[s as usize], "duplicate source {s}");
        informed[s as usize] = true;
        informed_at[s as usize] = 0;
        informed_list.push(s);
    }
    observer.on_trial_start(trial, n, sources);
    protocol.begin_trial(n, seed);

    let mut completed = (informed_list.len() == n).then_some(0u32);
    let mut messages_total = 0u64;
    let mut t = 0u32;
    let mut status = ProtocolStatus::Active;
    let obs = engine_obs();
    while completed.is_none() && t < max_rounds && status == ProtocolStatus::Active {
        let snap = {
            let _span = obs.model_step.start();
            g.step()
        };
        new_nodes.clear();
        let round_messages = {
            let _span = obs.protocol.start();
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at,
                informed_list,
            };
            let mut out = Transmissions::new(informed, new_nodes);
            protocol.transmit(snap, &view, &mut out);
            out.messages()
        };
        t += 1;
        for &v in new_nodes.iter() {
            informed_at[v as usize] = t;
        }
        informed_list.extend_from_slice(new_nodes);
        messages_total += round_messages;
        if informed_list.len() == n {
            completed = Some(t);
        }
        {
            let _span = obs.observer.start();
            observer.on_round(&RoundCtx {
                round: t,
                snapshot: Some(snap),
                delta: None,
                newly_informed: new_nodes,
                informed_count: informed_list.len(),
                messages: round_messages,
            });
        }
        if completed.is_none() {
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at,
                informed_list,
            };
            status = protocol.end_round(&view);
        }
    }

    let record = TrialRecord {
        trial,
        seed,
        time: completed,
        informed: informed_list.len(),
        rounds: t,
        messages: messages_total,
    };
    observer.on_trial_end(&record);
    record
}

/// The delta-path twin of [`execute_trial`]: steps the process through
/// [`EvolvingGraph::step_delta`] into a [`DynAdjacency`] and hands the
/// incremental state to [`Protocol::transmit_delta`]. A CSR snapshot is
/// materialized per round only when the observer asks for one, so the
/// per-round cost of a churn-proportional model + protocol stays
/// churn-proportional end to end.
///
/// Produces [`TrialRecord`]s identical to [`execute_trial`]'s for the
/// built-in protocols (pinned by the integration suite). The incremental
/// adjacency and the delta buffer live in `scratch` too: re-targeted per
/// trial, their allocations survive across trials.
#[allow(clippy::too_many_arguments)] // internal twin of execute_trial
fn execute_trial_delta<G, P, O>(
    g: &mut G,
    protocol: &mut P,
    observer: &mut O,
    trial: usize,
    seed: u64,
    sources: &[u32],
    max_rounds: u32,
    scratch: &mut TrialScratch,
) -> TrialRecord
where
    G: EvolvingGraph + ?Sized,
    P: Protocol + ?Sized,
    O: Observer + ?Sized,
{
    let n = g.node_count();
    scratch.prepare(n);
    let TrialScratch {
        informed,
        informed_at,
        informed_list,
        new_nodes,
        adj,
        delta,
        ..
    } = scratch;
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        assert!(!informed[s as usize], "duplicate source {s}");
        informed[s as usize] = true;
        informed_at[s as usize] = 0;
        informed_list.push(s);
    }
    observer.on_trial_start(trial, n, sources);
    protocol.begin_trial(n, seed);
    let needs_snapshots = observer.needs_snapshots();

    adj.reset(n);
    // `clear` (not `begin_round`) also forgets the default-path diffing
    // baseline of a previous trial's model, so a reused buffer starts
    // every trial with a full emission.
    delta.clear();
    // The adjacency starts empty, so the delta stream must start with a
    // full emission (the model may have been warmed up or pre-stepped).
    g.rebase_deltas();

    let mut completed = (informed_list.len() == n).then_some(0u32);
    let mut messages_total = 0u64;
    let mut t = 0u32;
    let mut status = ProtocolStatus::Active;
    let obs = engine_obs();
    while completed.is_none() && t < max_rounds && status == ProtocolStatus::Active {
        {
            let _span = obs.model_step.start();
            g.step_delta(delta);
        }
        {
            let _span = obs.delta_apply.start();
            adj.apply(delta);
        }
        new_nodes.clear();
        let round_messages = {
            let _span = obs.protocol.start();
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at,
                informed_list,
            };
            let mut out = Transmissions::new(informed, new_nodes);
            protocol.transmit_delta(adj, delta, &view, &mut out);
            out.messages()
        };
        t += 1;
        for &v in new_nodes.iter() {
            informed_at[v as usize] = t;
        }
        informed_list.extend_from_slice(new_nodes);
        messages_total += round_messages;
        if informed_list.len() == n {
            completed = Some(t);
        }
        {
            let _span = obs.observer.start();
            observer.on_round(&RoundCtx {
                round: t,
                snapshot: if needs_snapshots {
                    Some(adj.snapshot())
                } else {
                    None
                },
                delta: Some(delta),
                newly_informed: new_nodes,
                informed_count: informed_list.len(),
                messages: round_messages,
            });
        }
        if completed.is_none() {
            let view = SpreadView {
                round: t,
                node_count: n,
                informed_at,
                informed_list,
            };
            status = protocol.end_round(&view);
        }
    }

    let record = TrialRecord {
        trial,
        seed,
        time: completed,
        informed: informed_list.len(),
        rounds: t,
        messages: messages_total,
    };
    observer.on_trial_end(&record);
    record
}

/// The intra-trial sharded twin of [`execute_trial_delta`] for flooding
/// semantics: the model's lanes are stepped on `threads` threads and the
/// frontier sweep runs as a partitioned parallel pass
/// ([`crate::shard::flood_sharded_core`]). No protocol object is
/// consulted — the executor *is* the flooding protocol — which is why
/// the caller gates on [`Protocol::supports_sharded_flooding`].
/// Produces records and observer callbacks byte-identical to the serial
/// delta path (pinned by the sharded-engine suite).
#[allow(clippy::too_many_arguments)] // internal twin of execute_trial_delta
fn execute_trial_sharded<G, O>(
    g: &mut G,
    observer: &mut O,
    trial: usize,
    seed: u64,
    sources: &[u32],
    max_rounds: u32,
    threads: usize,
    scratch: &mut TrialScratch,
) -> TrialRecord
where
    G: EvolvingGraph + ?Sized,
    O: Observer + ?Sized,
{
    let n = g.node_count();
    observer.on_trial_start(trial, n, sources);
    let needs_snapshots = observer.needs_snapshots();
    // Same baseline contract as the serial delta path: the first round's
    // merged delta carries the full current edge set.
    g.rebase_deltas();
    let access = g
        .sharding()
        .expect("sharded dispatch requires a lane decomposition");
    let outcome = flood_sharded_core(
        n,
        access,
        sources,
        max_rounds,
        threads,
        &mut scratch.shard,
        |ev| {
            observer.on_round(&RoundCtx {
                round: ev.round,
                snapshot: if needs_snapshots {
                    Some(ev.adj.snapshot())
                } else {
                    None
                },
                delta: Some(ev.delta),
                newly_informed: ev.newly_informed,
                informed_count: ev.informed_count,
                messages: ev.messages,
            });
        },
    );
    let record = TrialRecord {
        trial,
        seed,
        time: outcome.completed,
        informed: outcome.informed,
        rounds: outcome.rounds,
        messages: outcome.messages,
    };
    observer.on_trial_end(&record);
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Flooding, ParsimoniousFlooding, PushGossip};
    use crate::StaticEvolvingGraph;
    use dg_graph::generators;

    #[test]
    fn builder_defaults_flood_a_cycle() {
        let report = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::cycle(9)))
            .trials(4)
            .max_rounds(100)
            .run();
        assert_eq!(report.trials(), 4);
        assert_eq!(report.incomplete(), 0);
        assert_eq!(report.mean(), 4.0);
        assert_eq!(report.node_count(), 9);
    }

    #[test]
    fn reports_are_reproducible() {
        let make = || {
            Simulation::builder()
                .model(|_| StaticEvolvingGraph::new(generators::grid(4, 4)))
                .protocol(PushGossip::new(1))
                .trials(6)
                .max_rounds(10_000)
                .base_seed(42)
        };
        assert_eq!(make().run(), make().run());
    }

    #[test]
    fn parallel_matches_serial() {
        let make = |parallel| {
            Simulation::builder()
                .model(|_| StaticEvolvingGraph::new(generators::complete(16)))
                .protocol(PushGossip::new(1))
                .trials(9)
                .max_rounds(10_000)
                .parallel(parallel)
                .run()
        };
        assert_eq!(make(true), make(false));
    }

    #[test]
    fn multi_source_covers_faster() {
        let single = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::cycle(12)))
            .trials(1)
            .run();
        let multi = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::cycle(12)))
            .sources([0, 6])
            .trials(1)
            .run();
        assert!(multi.mean() < single.mean());
        assert_eq!(multi.mean(), 3.0);
    }

    #[test]
    fn quiescent_protocol_stops_early() {
        let report = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(dg_graph::GraphBuilder::new(4).build()))
            .protocol(ParsimoniousFlooding::new(2))
            .trials(1)
            .max_rounds(1_000)
            .run();
        let rec = &report.records()[0];
        assert_eq!(rec.time, None);
        assert_eq!(rec.informed, 1);
        assert!(rec.rounds <= 3, "stopped at round {}", rec.rounds);
    }

    #[test]
    fn flooding_messages_counted() {
        // K4 from one source: round 1 sends 3 messages, done.
        let report = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::complete(4)))
            .protocol(Flooding::new())
            .trials(1)
            .run();
        assert_eq!(report.records()[0].messages, 3);
        assert_eq!(report.records()[0].time, Some(1));
    }

    #[test]
    fn stepping_paths_agree_on_dynamic_process() {
        // A periodic process churns edges every round; all three built-in
        // protocols must report byte-identical records on both paths,
        // message counts included.
        let make_model = |_seed: u64| {
            let graphs = [
                generators::path(10),
                generators::cycle(10),
                generators::star(10),
            ];
            crate::PeriodicEvolvingGraph::new(&graphs).unwrap()
        };
        let flooding = |stepping| {
            Simulation::builder()
                .model(make_model)
                .trials(3)
                .max_rounds(200)
                .stepping(stepping)
                .run()
        };
        assert_eq!(flooding(Stepping::Snapshot), flooding(Stepping::Delta));
        let push = |stepping| {
            Simulation::builder()
                .model(make_model)
                .protocol(PushGossip::new(1))
                .trials(3)
                .max_rounds(2_000)
                .stepping(stepping)
                .run()
        };
        assert_eq!(push(Stepping::Snapshot), push(Stepping::Delta));
        let pars = |stepping| {
            Simulation::builder()
                .model(make_model)
                .protocol(ParsimoniousFlooding::new(1))
                .trials(3)
                .max_rounds(2_000)
                .stepping(stepping)
                .run()
        };
        assert_eq!(pars(Stepping::Snapshot), pars(Stepping::Delta));
    }

    #[test]
    fn delta_path_works_for_non_native_models_and_protocols() {
        // Forced delta stepping must also work for a model without native
        // deltas (default diffing) under a custom protocol without a
        // native transmit_delta (default CSR materialization).
        #[derive(Clone)]
        struct EveryOther;
        impl Protocol for EveryOther {
            fn name(&self) -> &'static str {
                "every-other"
            }
            fn transmit(
                &mut self,
                snap: &crate::Snapshot,
                view: &SpreadView<'_>,
                out: &mut Transmissions<'_>,
            ) {
                for &u in view.informed_list {
                    for &v in snap.neighbors(u) {
                        if v % 2 == 0 {
                            out.send(v);
                        }
                    }
                }
            }
        }
        let inner = StaticEvolvingGraph::new(generators::complete(9));
        let make =
            move |seed: u64| crate::ThinnedEvolvingGraph::new(inner.clone(), 0.7, seed).unwrap();
        let run = |stepping| {
            Simulation::builder()
                .model(make.clone())
                .protocol(EveryOther)
                .trials(4)
                .max_rounds(50)
                .stepping(stepping)
                .run()
        };
        assert_eq!(run(Stepping::Snapshot), run(Stepping::Delta));
    }

    #[test]
    fn delta_path_materializes_snapshots_for_observers_that_ask() {
        #[derive(Default)]
        struct EdgeCounter {
            per_round: Vec<usize>,
        }
        impl Observer for EdgeCounter {
            fn needs_snapshots(&self) -> bool {
                true
            }
            fn on_round(&mut self, ctx: &RoundCtx<'_>) {
                self.per_round
                    .push(ctx.snapshot.expect("asked for snapshots").edge_count());
            }
        }
        let graphs = [generators::path(8), generators::complete(8)];
        let run = |stepping| {
            Simulation::builder()
                .model(|_| crate::PeriodicEvolvingGraph::new(&graphs).unwrap())
                .trials(1)
                .max_rounds(100)
                .stepping(stepping)
                .observers(|_| EdgeCounter::default())
                .run_observed()
        };
        let (rep_s, obs_s) = run(Stepping::Snapshot);
        let (rep_d, obs_d) = run(Stepping::Delta);
        assert_eq!(rep_s, rep_d);
        assert_eq!(obs_s[0].per_round, obs_d[0].per_round);
        assert_eq!(obs_d[0].per_round[0], 7); // E_0 is the path
    }

    #[test]
    fn warmed_up_delta_trials_match_snapshot_trials() {
        let graphs = [generators::path(9), generators::star(9)];
        let run = |stepping| {
            Simulation::builder()
                .model(|_| crate::PeriodicEvolvingGraph::new(&graphs).unwrap())
                .trials(2)
                .warm_up(3)
                .max_rounds(100)
                .stepping(stepping)
                .run()
        };
        assert_eq!(run(Stepping::Snapshot), run(Stepping::Delta));
    }

    #[test]
    fn run_trial_matches_batch_records() {
        // Externally scheduled trials (the sweep hook) must reproduce the
        // batch loop record for record, protocol randomness included.
        let builder = || {
            Simulation::builder()
                .model(|_| StaticEvolvingGraph::new(generators::complete(12)))
                .protocol(PushGossip::new(1))
                .max_rounds(10_000)
                .base_seed(0x5EE9)
        };
        let batch = builder().trials(5).run();
        for (i, record) in batch.records().iter().enumerate() {
            assert_eq!(&builder().run_trial(i), record, "trial {i}");
        }
        // Indices beyond any batch size still work (pure function of i).
        assert_eq!(builder().run_trial(7).seed, mix_seed(0x5EE9, 7));
    }

    /// A seeded, churning model whose realizations genuinely depend on
    /// per-trial randomness — the interesting case for model reuse.
    fn seeded_node_meg(
        seed: u64,
    ) -> crate::node_meg::NodeMeg<crate::node_meg::FiniteNodeChain, crate::node_meg::MatrixConnection>
    {
        let rows = vec![
            vec![0.5, 0.25, 0.25],
            vec![0.25, 0.5, 0.25],
            vec![0.25, 0.25, 0.5],
        ];
        let chain = crate::node_meg::FiniteNodeChain::uniform_start(
            dg_markov::DenseChain::from_rows(rows).unwrap(),
        );
        let conn = crate::node_meg::MatrixConnection::same_state(3);
        crate::node_meg::NodeMeg::new(chain, conn, 14, seed).unwrap()
    }

    #[test]
    fn model_reuse_matches_fresh_construction() {
        // The tentpole pin: per-worker reset-based reuse must be
        // byte-identical to per-trial fresh construction, on both
        // stepping paths, for a model with real per-seed randomness.
        for stepping in [Stepping::Snapshot, Stepping::Delta] {
            let build = || {
                Simulation::builder()
                    .model(seeded_node_meg)
                    .trials(7)
                    .warm_up(2)
                    .max_rounds(10_000)
                    .stepping(stepping)
                    .base_seed(0x2E5E)
            };
            let reused = build().run();
            let fresh = build().reuse_models(false).run();
            assert_eq!(reused, fresh, "{stepping:?}");
        }
    }

    #[test]
    fn run_trial_with_matches_stateless_run_trial() {
        // The opt-in scratch handle: one cached model + one scratch
        // across many trials reproduces the stateless hook record for
        // record, and a scratch survives crossing configurations.
        let builder = |n: usize| {
            Simulation::builder()
                .model(seeded_node_meg)
                .protocol(PushGossip::new(2))
                .max_rounds(10_000)
                .base_seed(0x5C2A + n as u64)
        };
        let mut scratch = TrialScratch::new();
        for n in [0usize, 1] {
            let b = builder(n);
            let mut model = None;
            for trial in 0..5 {
                let reused = b.run_trial_with(trial, &mut model, &mut scratch);
                assert_eq!(reused, b.run_trial(trial), "config {n} trial {trial}");
            }
            assert!(model.is_some(), "slot holds the worker model");
        }
    }

    #[test]
    #[should_panic(expected = "UNINFORMED sentinel")]
    fn max_rounds_at_sentinel_rejected() {
        let _ = Simulation::builder().max_rounds(u32::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let _ = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::path(3)))
            .source(3)
            .trials(1)
            .run();
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panics() {
        let _ = Simulation::builder()
            .model(|_| StaticEvolvingGraph::new(generators::path(3)))
            .sources([])
            .trials(1)
            .run();
    }
}
