//! Engine metric handles on the process-wide `dg-obs` registry.
//!
//! Everything here is read-only with respect to simulation state: the
//! handles tally wall-clock spans and event counts, never touching RNG
//! streams or trial data, so records are byte-identical whether recording
//! is on or off (pinned by the workspace `obs_identity` suite). All
//! handles are created lazily on first use; until [`dg_obs::enabled`]
//! returns true every recording call is a relaxed load + branch.

use dg_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::{Mutex, OnceLock};

/// Per-round engine phase timers and per-trial counters.
pub(crate) struct EngineObs {
    /// `dg_engine_round_phase_seconds{phase="model_step"}` — advancing the
    /// dynamic graph (snapshot rebuild or native delta emission).
    pub model_step: Histogram,
    /// `…{phase="delta_apply"}` — merging the round's delta into the
    /// incremental adjacency (delta path only).
    pub delta_apply: Histogram,
    /// `…{phase="protocol"}` — the protocol's transmission sweep.
    pub protocol: Histogram,
    /// `…{phase="observer"}` — streaming observer flush.
    pub observer: Histogram,
    /// `dg_engine_trials_total` — trials executed by any executor.
    pub trials: Counter,
    /// `dg_engine_models_built_total` — model factory invocations.
    pub models_built: Counter,
    /// `dg_engine_models_reused_total` — in-place `reset(seed)` reuses.
    pub models_reused: Counter,
    /// `dg_engine_scratch_grow_total` — trials whose [`super::TrialScratch`]
    /// had to grow its buffers (steady state should not count).
    pub scratch_grow: Counter,
}

/// Round-phase latency buckets: 100 ns … 1 s, decade steps.
fn phase_bounds() -> Vec<f64> {
    dg_obs::exponential_bounds(1e-7, 10.0, 8)
}

pub(crate) fn engine_obs() -> &'static EngineObs {
    static OBS: OnceLock<EngineObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = Registry::global();
        let phase = |p: &str| {
            reg.histogram(
                &dg_obs::label("dg_engine_round_phase_seconds", "phase", p),
                &phase_bounds(),
            )
        };
        EngineObs {
            model_step: phase("model_step"),
            delta_apply: phase("delta_apply"),
            protocol: phase("protocol"),
            observer: phase("observer"),
            trials: reg.counter("dg_engine_trials_total"),
            models_built: reg.counter("dg_engine_models_built_total"),
            models_reused: reg.counter("dg_engine_models_reused_total"),
            scratch_grow: reg.counter("dg_engine_scratch_grow_total"),
        }
    })
}

/// Lane/shard work accounting for the intra-trial sharded executor.
pub(crate) struct ShardObs {
    /// `dg_shard_rounds_total` — sharded rounds executed.
    pub rounds: Counter,
    /// `dg_shard_lane_imbalance_permille` — churn share of the busiest
    /// lane in the most recent round, in thousandths (1000/lanes ≈
    /// perfectly balanced, 1000 = one lane did everything).
    pub imbalance: Gauge,
    /// `dg_shard_lane_churn_total{lane="NN"}` — cumulative per-lane churn
    /// (edge events emitted), grown on demand to the widest lane set seen.
    lanes: Mutex<Vec<Counter>>,
}

pub(crate) fn shard_obs() -> &'static ShardObs {
    static OBS: OnceLock<ShardObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = Registry::global();
        ShardObs {
            rounds: reg.counter("dg_shard_rounds_total"),
            imbalance: reg.gauge("dg_shard_lane_imbalance_permille"),
            lanes: Mutex::new(Vec::new()),
        }
    })
}

impl ShardObs {
    /// Record one sharded round's per-lane churn (called from the
    /// single-threaded merge point, after the lanes have stepped).
    pub fn record_round(&self, lane_churn: impl Iterator<Item = u64>) {
        let reg = Registry::global();
        let mut lanes = self.lanes.lock().unwrap();
        let mut total = 0u64;
        let mut max = 0u64;
        for (i, churn) in lane_churn.enumerate() {
            if i >= lanes.len() {
                lanes.push(reg.counter(&dg_obs::label(
                    "dg_shard_lane_churn_total",
                    "lane",
                    &format!("{i:02}"),
                )));
            }
            lanes[i].add(churn);
            total += churn;
            max = max.max(churn);
        }
        self.rounds.inc();
        if let Some(permille) = (max * 1000).checked_div(total) {
            self.imbalance.set(permille as i64);
        }
    }
}
