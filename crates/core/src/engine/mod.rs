//! The unified simulation engine: one builder-driven entry point for
//! every spreading Monte-Carlo in the workspace.
//!
//! The paper analyzes a single process — `I_{t+1} = I_t ∪ N_{E_t}(I_t)`
//! and its randomized/resource-bounded variants — over many dynamic-graph
//! families. The engine factors that product space into three orthogonal
//! axes:
//!
//! * **model** — any [`EvolvingGraph`](crate::EvolvingGraph) factory
//!   `Fn(u64) -> G`, seeded per trial;
//! * **protocol** — a [`Protocol`] deciding who transmits to whom each
//!   round: [`Flooding`], [`PushGossip`], [`ParsimoniousFlooding`], or
//!   your own;
//! * **observers** — streaming per-round [`Observer`]s (growth curves,
//!   phase structure, delivery delays) that never buffer whole runs.
//!
//! [`Simulation::builder`] owns everything the old ad-hoc loops
//! duplicated: per-trial seed derivation (`mix_seed(base_seed, trial)`),
//! warm-up to stationarity, the synchronous round loop, round caps,
//! quiescence detection, and trial aggregation. With the `parallel`
//! feature (default) trials run on all cores; results are byte-identical
//! to the serial engine because every trial is a pure function of its
//! derived seed and aggregation is ordered by trial index.
//!
//! # Quickstart
//!
//! ```
//! use dynagraph::engine::Simulation;
//! use dynagraph::StaticEvolvingGraph;
//! use dg_graph::generators;
//!
//! let report = Simulation::builder()
//!     .model(|_seed| StaticEvolvingGraph::new(generators::cycle(9)))
//!     .trials(8)
//!     .max_rounds(100)
//!     .run();
//! assert_eq!(report.incomplete(), 0);
//! assert_eq!(report.mean(), 4.0);
//! ```
//!
//! # The stepping axis
//!
//! [`SimulationBuilder::stepping`] selects the per-trial pipeline:
//!
//! * [`Stepping::Auto`] (default) — the delta path for models
//!   advertising [`EvolvingGraph::has_native_deltas`](crate::EvolvingGraph::has_native_deltas),
//!   the snapshot path otherwise;
//! * [`Stepping::Snapshot`] — always rebuild a CSR [`crate::Snapshot`]
//!   per round (the classic pipeline, and the reference the delta path
//!   is pinned against);
//! * [`Stepping::Delta`] — always drive
//!   [`step_delta`](crate::EvolvingGraph::step_delta) through a
//!   [`crate::DynAdjacency`]; correct for every model, fast for
//!   slow-churn ones.
//!
//! Records are byte-identical across paths — only per-round cost
//! differs:
//!
//! ```
//! use dynagraph::engine::{Simulation, Stepping};
//! use dynagraph::PeriodicEvolvingGraph;
//! use dg_graph::generators;
//!
//! let graphs = [generators::path(10), generators::cycle(10)];
//! let run = |stepping| {
//!     Simulation::builder()
//!         .model(|_| PeriodicEvolvingGraph::new(&graphs).unwrap())
//!         .trials(3)
//!         .max_rounds(100)
//!         .stepping(stepping)
//!         .run()
//! };
//! assert_eq!(run(Stepping::Snapshot), run(Stepping::Delta));
//! ```
//!
//! On the delta path, observers see [`RoundCtx::delta`] for free (e.g.
//! [`ChurnObserver`]); a CSR snapshot is materialized per round only for
//! observers whose [`Observer::needs_snapshots`] returns `true`.
//!
//! # Migrating from the pre-engine API
//!
//! The legacy single-run primitives survive as reference
//! implementations; every Monte-Carlo loop goes through the builder:
//!
//! | old                                               | new                                        |
//! |---------------------------------------------------|--------------------------------------------|
//! | `flooding::run_trials(make, &TrialConfig {..})`   | `Simulation::builder().model(make)…run()`  |
//! | `gossip::push_spread(&mut g, s, k, cap, seed)`    | `.protocol(PushGossip::new(k))`            |
//! | `gossip::parsimonious_flood(&mut g, s, ttl, cap)` | `.protocol(ParsimoniousFlooding::new(ttl))`|
//! | hand-rolled trial loops + `Summary`               | `.observers(…)` + [`SimulationReport`]     |
//!
//! `flooding::flood`/`flood_multi` are unchanged single-run primitives;
//! `run_trials` remains as a deprecated shim over the engine and reports
//! identical numbers (same `mix_seed(base_seed, trial)` derivation).

pub(crate) mod instrument;
mod observer;
mod protocol;
mod report;
mod simulation;

pub use observer::{
    ChurnObserver, DelayObserver, MeanGrowthObserver, Observer, PhaseObserver, RoundCtx,
};
pub use protocol::{
    Flooding, ParsimoniousFlooding, Protocol, ProtocolStatus, PushGossip, SpreadView, Transmissions,
};
pub use report::{SimulationReport, TrialRecord};
pub use simulation::{NoModel, Simulation, SimulationBuilder, Stepping, TrialScratch};
