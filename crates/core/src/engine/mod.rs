//! The unified simulation engine: one builder-driven entry point for
//! every spreading Monte-Carlo in the workspace.
//!
//! The paper analyzes a single process — `I_{t+1} = I_t ∪ N_{E_t}(I_t)`
//! and its randomized/resource-bounded variants — over many dynamic-graph
//! families. The engine factors that product space into three orthogonal
//! axes:
//!
//! * **model** — any [`EvolvingGraph`](crate::EvolvingGraph) factory
//!   `Fn(u64) -> G`, seeded per trial;
//! * **protocol** — a [`Protocol`] deciding who transmits to whom each
//!   round: [`Flooding`], [`PushGossip`], [`ParsimoniousFlooding`], or
//!   your own;
//! * **observers** — streaming per-round [`Observer`]s (growth curves,
//!   phase structure, delivery delays) that never buffer whole runs.
//!
//! [`Simulation::builder`] owns everything the old ad-hoc loops
//! duplicated: per-trial seed derivation (`mix_seed(base_seed, trial)`),
//! warm-up to stationarity, the synchronous round loop, round caps,
//! quiescence detection, and trial aggregation. With the `parallel`
//! feature (default) trials run on all cores; results are byte-identical
//! to the serial engine because every trial is a pure function of its
//! derived seed and aggregation is ordered by trial index.
//!
//! # Quickstart
//!
//! ```
//! use dynagraph::engine::Simulation;
//! use dynagraph::StaticEvolvingGraph;
//! use dg_graph::generators;
//!
//! let report = Simulation::builder()
//!     .model(|_seed| StaticEvolvingGraph::new(generators::cycle(9)))
//!     .trials(8)
//!     .max_rounds(100)
//!     .run();
//! assert_eq!(report.incomplete(), 0);
//! assert_eq!(report.mean(), 4.0);
//! ```

mod observer;
mod protocol;
mod report;
mod simulation;

pub use observer::{DelayObserver, MeanGrowthObserver, Observer, PhaseObserver, RoundCtx};
pub use protocol::{
    Flooding, ParsimoniousFlooding, Protocol, ProtocolStatus, PushGossip, SpreadView, Transmissions,
};
pub use report::{SimulationReport, TrialRecord};
pub use simulation::{NoModel, Simulation, SimulationBuilder, Stepping};
