//! Adaptive parameter sweeps over the simulation engine.
//!
//! This module re-exports the `dg-sweep` orchestration crate —
//! [`Grid`]/[`Axis`] parameter spaces, the adaptive `(cell × trial)`
//! scheduler with sequential stopping, and the resumable
//! [`SweepReport`] artifact layer — next to the engine hook that plugs
//! the two together: [`SimulationBuilder::run_trial`].
//!
//! # The glue contract
//!
//! The scheduler derives `trial.cell_seed = mix_seed(base_seed,
//! cell.id())` and `trial.seed = mix_seed(cell_seed, trial.index)`; the
//! engine derives a trial's seed as `mix_seed(builder_base_seed,
//! trial_index)` — the *same* SplitMix64 mix (pinned by this module's
//! tests). So a trial function that hands [`Trial::cell_seed`] to
//! [`SimulationBuilder::base_seed`] and [`Trial::index`] to
//! [`SimulationBuilder::run_trial`] runs exactly the trial the engine's
//! own batch loop would have run at that index, and the sweep's report
//! is byte-identical however `(cell × trial)` items were scheduled —
//! serially, work-stealing across threads, or killed and resumed from a
//! checkpoint.
//!
//! # Example: a phase curve in a few lines
//!
//! Flooding time of a static cycle vs its size, with a fixed budget (an
//! adaptive [`TrialBudget`] with a [`CiTarget`] spends trials where the
//! variance is instead):
//!
//! ```
//! use dg_graph::generators;
//! use dynagraph::engine::Simulation;
//! use dynagraph::sweep::{Axis, Grid, Sweep, TrialBudget};
//! use dynagraph::StaticEvolvingGraph;
//!
//! let grid = Grid::new().axis(Axis::ints("n", [8, 12, 16]));
//! let report = Sweep::over(grid)
//!     .budget(TrialBudget::fixed(3))
//!     .base_seed(0xC0FFEE)
//!     .run(|cell, trial| {
//!         let n = cell.usize("n");
//!         let record = Simulation::builder()
//!             .model(move |_seed| StaticEvolvingGraph::new(generators::cycle(n)))
//!             .max_rounds(100)
//!             .base_seed(trial.cell_seed) // sweep seed -> engine seed
//!             .run_trial(trial.index);
//!         record.time.map(f64::from) // None = censored trial
//!     })
//!     .unwrap();
//!
//! assert!(report.is_complete());
//! // A cycle of n nodes floods in ceil((n-1)/2) rounds, every trial.
//! assert_eq!(report.cell(0).mean(), Some(4.0));
//! assert_eq!(report.cell(2).mean(), Some(8.0));
//! // The artifact round-trips: this is what checkpoint resume relies on.
//! let json = report.to_json();
//! let reloaded = dynagraph::sweep::SweepReport::from_json(&json).unwrap();
//! assert_eq!(reloaded.to_json(), json);
//! ```
//!
//! Censoring composes: a [`TrialRecord`]
//! whose `time` is `None` (round cap hit, protocol went quiescent)
//! becomes a `None` sample, reported per cell as `incomplete` instead of
//! poisoning the mean.
//!
//! [`SimulationBuilder::run_trial`]: crate::engine::SimulationBuilder::run_trial
//! [`SimulationBuilder::base_seed`]: crate::engine::SimulationBuilder::base_seed

pub use dg_sweep::{
    mix_seed, Axis, Cell, CellReport, CiTarget, Grid, Metric, MetricStopping, NearestCell, Sweep,
    SweepError, SweepReport, SweepSpec, Trial, TrialBudget, TrialPanic,
};

use crate::engine::TrialRecord;

/// The metric names [`trial_metrics`] can extract from a
/// [`TrialRecord`], in canonical order: `rounds` (spreading time,
/// censored when the trial hit its cap), `messages` (total sends,
/// always counted — the round cap censors *time*, not cost), and
/// `coverage` (informed fraction, always counted).
pub const TRIAL_METRICS: &[&str] = &["rounds", "messages", "coverage"];

/// Extracts one sample row from an engine trial for a multi-metric
/// sweep: one slot per declared metric, in declaration order.
///
/// This is the engine half of the `dg-sweep/2` glue — hand the grid's
/// declared metrics and the [`TrialRecord`] that
/// [`SimulationBuilder::run_trial`] returned, and the row is ready for
/// [`Sweep::run_metrics`]. Censoring is per metric: a capped trial
/// yields `rounds = None` while `messages` and `coverage` still carry
/// the cost and reach actually observed, which is exactly what a
/// time-vs-messages trade-off sweep needs from censored cells.
///
/// `n` is the trial's node count (for the `coverage` fraction).
///
/// # Panics
///
/// Panics if a metric name is not in [`TRIAL_METRICS`] — declared
/// metrics are part of the sweep's identity, so an unknown name is a
/// programming error, not data.
///
/// [`SimulationBuilder::run_trial`]: crate::engine::SimulationBuilder::run_trial
pub fn trial_metrics(record: &TrialRecord, n: usize, metrics: &[Metric]) -> Vec<Option<f64>> {
    metrics
        .iter()
        .map(|m| match m.name() {
            "rounds" => record.time.map(f64::from),
            "messages" => Some(record.messages as f64),
            "coverage" => Some(record.informed as f64 / n as f64),
            other => panic!("unknown trial metric {other:?} (supported: {TRIAL_METRICS:?})"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::engine::{PushGossip, Simulation};
    use crate::sweep::{trial_metrics, Axis, CiTarget, Grid, Metric, Sweep, TrialBudget};
    use crate::StaticEvolvingGraph;
    use dg_graph::generators;

    #[test]
    fn seed_derivations_coincide() {
        // The whole glue contract rests on the two mix_seed copies being
        // the same function; pin them against each other.
        for base in [0u64, 1, 42, u64::MAX, 0xD15E_A5E1] {
            for stream in [0u64, 1, 7, 63, u64::MAX] {
                assert_eq!(
                    dg_sweep::mix_seed(base, stream),
                    crate::mix_seed(base, stream),
                    "mix_seed diverged at ({base}, {stream})"
                );
            }
        }
    }

    #[test]
    fn sweep_over_engine_matches_direct_batches() {
        // A sweep cell's samples must equal the per-trial records of a
        // plain engine batch run with the cell's seed.
        let grid = Grid::new().axis(Axis::ints("n", [12, 24]));
        let budget = TrialBudget::fixed(4);
        let report = Sweep::over(grid)
            .budget(budget)
            .base_seed(0xABCD)
            .run(|cell, trial| {
                let n = cell.usize("n");
                Simulation::builder()
                    .model(move |_| StaticEvolvingGraph::new(generators::complete(n)))
                    .protocol(PushGossip::new(1))
                    .max_rounds(10_000)
                    .base_seed(trial.cell_seed)
                    .run_trial(trial.index)
                    .time
                    .map(f64::from)
            })
            .unwrap();
        for (cell_id, &n) in [12usize, 24].iter().enumerate() {
            let batch = Simulation::builder()
                .model(move |_| StaticEvolvingGraph::new(generators::complete(n)))
                .protocol(PushGossip::new(1))
                .trials(4)
                .max_rounds(10_000)
                .base_seed(crate::mix_seed(0xABCD, cell_id as u64))
                .run();
            let expected: Vec<Vec<Option<f64>>> = batch
                .records()
                .iter()
                .map(|r| vec![r.time.map(f64::from)])
                .collect();
            assert_eq!(report.cell(cell_id).samples, expected, "cell {cell_id}");
        }
    }

    #[test]
    fn multi_metric_sweep_extracts_engine_observables() {
        // trial_metrics glues TrialRecord to run_metrics: rounds carries
        // the time (censored on cap), messages and coverage always count.
        let metrics = [
            Metric::new("rounds"),
            Metric::observe("messages"),
            Metric::observe("coverage"),
        ];
        let grid = Grid::new()
            .axis(Axis::ints("n", [12, 24]))
            .metrics(metrics.clone());
        let report = Sweep::over(grid)
            .budget(TrialBudget::fixed(4))
            .base_seed(0xABCD)
            .run_metrics(|cell, trial| {
                let n = cell.usize("n");
                let record = Simulation::builder()
                    .model(move |_| StaticEvolvingGraph::new(generators::complete(n)))
                    .protocol(PushGossip::new(1))
                    .max_rounds(10_000)
                    .base_seed(trial.cell_seed)
                    .run_trial(trial.index);
                trial_metrics(&record, n, &metrics)
            })
            .unwrap();
        for (cell_id, &n) in [12usize, 24].iter().enumerate() {
            let batch = Simulation::builder()
                .model(move |_| StaticEvolvingGraph::new(generators::complete(n)))
                .protocol(PushGossip::new(1))
                .trials(4)
                .max_rounds(10_000)
                .base_seed(crate::mix_seed(0xABCD, cell_id as u64))
                .run();
            let expected: Vec<Vec<Option<f64>>> = batch
                .records()
                .iter()
                .map(|r| {
                    vec![
                        r.time.map(f64::from),
                        Some(r.messages as f64),
                        Some(r.informed as f64 / n as f64),
                    ]
                })
                .collect();
            let cell = report.cell(cell_id);
            assert_eq!(cell.samples, expected, "cell {cell_id}");
            // Everyone informed on a complete graph: coverage is 1.
            assert_eq!(cell.mean_of(2), Some(1.0), "cell {cell_id}");
            assert!(cell.mean_of(1).unwrap() > 0.0);
        }
    }

    #[test]
    fn capped_trials_censor_time_but_not_cost() {
        // A 1-round cap on a large cycle: flooding cannot finish, so
        // `rounds` censors — but messages were still sent and counted.
        let metrics = [
            Metric::observe("rounds"),
            Metric::observe("messages"),
            Metric::observe("coverage"),
        ];
        let grid = Grid::new()
            .axis(Axis::ints("n", [64]))
            .max_rounds(|_| 1)
            .metrics(metrics.clone());
        let report = Sweep::over(grid)
            .budget(TrialBudget::fixed(2))
            .run_metrics(|cell, trial| {
                let n = cell.usize("n");
                let cap = cell.max_rounds().unwrap();
                let record = Simulation::builder()
                    .model(move |_| StaticEvolvingGraph::new(generators::cycle(n)))
                    .max_rounds(cap)
                    .base_seed(trial.cell_seed)
                    .run_trial(trial.index);
                trial_metrics(&record, n, &metrics)
            })
            .unwrap();
        let cell = report.cell(0);
        assert_eq!(cell.incomplete_of(0), 2, "time censored in every trial");
        assert_eq!(cell.incomplete_of(1), 0, "messages always counted");
        assert!(cell.mean_of(1).unwrap() > 0.0);
        // One flooding round from one source on a cycle: 3 informed.
        assert_eq!(cell.mean_of(2), Some(3.0 / 64.0));
    }

    #[test]
    fn adaptive_sweep_stops_deterministic_cells_at_min() {
        // Flooding on a static cycle has zero variance: the CI collapses
        // at min_trials, so an adaptive budget never wastes the cap.
        let grid = Grid::new().axis(Axis::ints("n", [9, 15]));
        let report = Sweep::over(grid)
            .budget(TrialBudget::adaptive(3, 64, CiTarget::Relative(0.05)))
            .run(|cell, trial| {
                let n = cell.usize("n");
                Simulation::builder()
                    .model(move |_| StaticEvolvingGraph::new(generators::cycle(n)))
                    .max_rounds(100)
                    .base_seed(trial.cell_seed)
                    .run_trial(trial.index)
                    .time
                    .map(f64::from)
            })
            .unwrap();
        for cell in report.cells() {
            assert_eq!(cell.trials(), 3, "cell {}", cell.id);
            assert_eq!(cell.ci().unwrap().half_width(), 0.0);
        }
    }
}
