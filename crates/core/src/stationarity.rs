//! Empirical estimation of the `(M, α, β)`-stationarity parameters of §3.
//!
//! A dynamic graph is `(M, α, β)`-stationary when, at every epoch boundary
//! `τM` and regardless of the past:
//!
//! 1. **Density:** `P(e_{i,j}^{τM}) >= α` for every pair `{i, j}`;
//! 2. **β-independence:**
//!    `P(e_{i,A}·e_{j,A}) <= β · P(e_{i,A}) · P(e_{j,A})` for all `i, j`
//!    and `A ⊆ [n] − {i, j}`.
//!
//! These conditions cannot be verified exhaustively by simulation (they
//! quantify over all subsets), but they can be *probed*: we sample random
//! pairs `(i, j)` and random triples `(i, j, A)`, observe the process at
//! epoch boundaries across many independent runs, and report the worst
//! ratios seen. The estimates feed Theorem 1 directly (experiment T11).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{mix_seed, EvolvingGraph, Snapshot};

/// Configuration for the `(α, β)` estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AlphaBetaConfig {
    /// Epoch length `M`: rounds between observed snapshots.
    pub epoch: usize,
    /// Warm-up rounds before the first observation (approach
    /// stationarity).
    pub warm_up: usize,
    /// Observations (epoch boundaries) per run.
    pub observations: usize,
    /// Independent runs.
    pub runs: usize,
    /// Number of random node pairs probed for the density condition.
    pub pair_samples: usize,
    /// Number of random `(i, j, A)` triples probed for β-independence.
    pub set_samples: usize,
    /// Size of each sampled set `A`.
    pub set_size: usize,
    /// Base seed for both the probe choice and the runs.
    pub base_seed: u64,
}

impl Default for AlphaBetaConfig {
    fn default() -> Self {
        AlphaBetaConfig {
            epoch: 1,
            warm_up: 0,
            observations: 200,
            runs: 8,
            pair_samples: 16,
            set_samples: 16,
            set_size: 4,
            base_seed: 0xA1FA_BE7A,
        }
    }
}

/// Empirical `(α, β)` estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AlphaBetaEstimate {
    /// Minimum edge probability over probed pairs — the empirical `α`.
    pub alpha_min: f64,
    /// Mean edge probability over probed pairs.
    pub alpha_mean: f64,
    /// Maximum independence ratio over probed triples — the empirical `β`.
    /// `NaN` when no triple produced both marginals positive.
    pub beta_max: f64,
    /// Mean independence ratio over probed triples with positive marginals.
    pub beta_mean: f64,
    /// Total epoch-boundary observations used.
    pub observations: usize,
}

struct PairProbe {
    i: u32,
    j: u32,
    hits: u64,
}

struct SetProbe {
    i: u32,
    j: u32,
    set: Vec<u32>,
    i_hits: u64,
    j_hits: u64,
    both_hits: u64,
}

fn connected_to_set(snap: &Snapshot, node: u32, set: &[u32]) -> bool {
    set.iter().any(|&a| snap.has_edge(node, a))
}

/// Estimates `(α, β)` by Monte-Carlo probing at epoch boundaries.
///
/// `make(seed)` constructs a fresh seeded process. Probes (pairs and
/// triples) are drawn once from `cfg.base_seed` and shared across runs, so
/// counts accumulate per probe.
///
/// # Panics
///
/// Panics if the process has fewer than `cfg.set_size + 2` nodes, or if
/// any count in the config is zero.
///
/// # Examples
///
/// ```
/// use dynagraph::stationarity::{estimate_alpha_beta, AlphaBetaConfig};
/// use dynagraph::{StaticEvolvingGraph, ThinnedEvolvingGraph};
/// use dg_graph::generators;
///
/// // Complete graph thinned at 0.5: every edge appears independently with
/// // probability 1/2 => alpha ≈ 0.5, beta ≈ 1.
/// let cfg = AlphaBetaConfig { observations: 400, runs: 2, ..AlphaBetaConfig::default() };
/// let est = estimate_alpha_beta(
///     |seed| ThinnedEvolvingGraph::new(
///         StaticEvolvingGraph::new(generators::complete(16)), 0.5, seed,
///     ).unwrap(),
///     16,
///     &cfg,
/// );
/// assert!((est.alpha_mean - 0.5).abs() < 0.1);
/// assert!(est.beta_max < 2.0);
/// ```
pub fn estimate_alpha_beta<G, F>(make: F, n: usize, cfg: &AlphaBetaConfig) -> AlphaBetaEstimate
where
    G: EvolvingGraph,
    F: Fn(u64) -> G + Sync,
{
    assert!(
        cfg.epoch > 0 && cfg.observations > 0 && cfg.runs > 0,
        "counts must be positive"
    );
    assert!(cfg.pair_samples > 0 && cfg.set_samples > 0 && cfg.set_size > 0);
    assert!(
        n >= cfg.set_size + 2,
        "need at least set_size + 2 nodes to sample disjoint probes"
    );
    let mut probe_rng = SmallRng::seed_from_u64(mix_seed(cfg.base_seed, 0xBEEF));
    let mut pairs: Vec<PairProbe> = (0..cfg.pair_samples)
        .map(|_| {
            let i = probe_rng.gen_range(0..n as u32);
            let mut j = probe_rng.gen_range(0..n as u32);
            while j == i {
                j = probe_rng.gen_range(0..n as u32);
            }
            PairProbe { i, j, hits: 0 }
        })
        .collect();
    let mut sets: Vec<SetProbe> = (0..cfg.set_samples)
        .map(|_| {
            // Sample i, j, and a disjoint A by shuffling a prefix.
            let mut nodes: Vec<u32> = (0..n as u32).collect();
            for k in 0..(cfg.set_size + 2) {
                let l = probe_rng.gen_range(k..n);
                nodes.swap(k, l);
            }
            SetProbe {
                i: nodes[0],
                j: nodes[1],
                set: nodes[2..cfg.set_size + 2].to_vec(),
                i_hits: 0,
                j_hits: 0,
                both_hits: 0,
            }
        })
        .collect();

    for run in 0..cfg.runs {
        let seed = mix_seed(cfg.base_seed, 1 + run as u64);
        let mut g = make(seed);
        assert_eq!(g.node_count(), n, "process size must match n");
        g.warm_up(cfg.warm_up);
        for obs in 0..cfg.observations {
            if obs > 0 || cfg.epoch > 1 {
                g.warm_up(cfg.epoch - 1);
            }
            let snap = g.step();
            for p in &mut pairs {
                if snap.has_edge(p.i, p.j) {
                    p.hits += 1;
                }
            }
            for s in &mut sets {
                let ei = connected_to_set(snap, s.i, &s.set);
                let ej = connected_to_set(snap, s.j, &s.set);
                if ei {
                    s.i_hits += 1;
                }
                if ej {
                    s.j_hits += 1;
                }
                if ei && ej {
                    s.both_hits += 1;
                }
            }
        }
    }

    let total = (cfg.runs * cfg.observations) as f64;
    let alpha_probs: Vec<f64> = pairs.iter().map(|p| p.hits as f64 / total).collect();
    let alpha_min = alpha_probs.iter().copied().fold(f64::INFINITY, f64::min);
    let alpha_mean = alpha_probs.iter().sum::<f64>() / alpha_probs.len() as f64;

    let mut beta_max = f64::NAN;
    let mut beta_sum = 0.0;
    let mut beta_count = 0usize;
    for s in &sets {
        if s.i_hits == 0 || s.j_hits == 0 {
            continue;
        }
        let pi = s.i_hits as f64 / total;
        let pj = s.j_hits as f64 / total;
        let pboth = s.both_hits as f64 / total;
        let ratio = pboth / (pi * pj);
        beta_sum += ratio;
        beta_count += 1;
        if beta_max.is_nan() || ratio > beta_max {
            beta_max = ratio;
        }
    }
    let beta_mean = if beta_count == 0 {
        f64::NAN
    } else {
        beta_sum / beta_count as f64
    };

    AlphaBetaEstimate {
        alpha_min,
        alpha_mean,
        beta_max,
        beta_mean,
        observations: cfg.runs * cfg.observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StaticEvolvingGraph, ThinnedEvolvingGraph};
    use dg_graph::generators;

    #[test]
    fn independent_edges_beta_near_one() {
        let cfg = AlphaBetaConfig {
            observations: 500,
            runs: 4,
            pair_samples: 10,
            set_samples: 10,
            set_size: 3,
            ..AlphaBetaConfig::default()
        };
        let est = estimate_alpha_beta(
            |seed| {
                ThinnedEvolvingGraph::new(
                    StaticEvolvingGraph::new(generators::complete(20)),
                    0.3,
                    seed,
                )
                .unwrap()
            },
            20,
            &cfg,
        );
        assert!(
            (est.alpha_mean - 0.3).abs() < 0.05,
            "alpha = {}",
            est.alpha_mean
        );
        assert!(est.alpha_min > 0.2);
        assert!(est.beta_max < 1.6, "beta_max = {}", est.beta_max);
        assert!((est.beta_mean - 1.0).abs() < 0.3);
        assert_eq!(est.observations, 2000);
    }

    #[test]
    fn static_complete_graph_alpha_one() {
        let cfg = AlphaBetaConfig {
            observations: 10,
            runs: 1,
            ..AlphaBetaConfig::default()
        };
        let est = estimate_alpha_beta(
            |_| StaticEvolvingGraph::new(generators::complete(10)),
            10,
            &cfg,
        );
        assert_eq!(est.alpha_min, 1.0);
        assert_eq!(est.alpha_mean, 1.0);
        // Both marginals are always 1, joint always 1: beta = 1 exactly.
        assert_eq!(est.beta_max, 1.0);
    }

    #[test]
    fn edgeless_graph_alpha_zero_beta_nan() {
        let cfg = AlphaBetaConfig {
            observations: 5,
            runs: 1,
            ..AlphaBetaConfig::default()
        };
        let est = estimate_alpha_beta(
            |_| StaticEvolvingGraph::new(dg_graph::GraphBuilder::new(12).build()),
            12,
            &cfg,
        );
        assert_eq!(est.alpha_min, 0.0);
        assert!(est.beta_max.is_nan());
        assert!(est.beta_mean.is_nan());
    }

    #[test]
    #[should_panic(expected = "set_size + 2")]
    fn too_few_nodes_panics() {
        let cfg = AlphaBetaConfig {
            set_size: 5,
            ..AlphaBetaConfig::default()
        };
        let _ = estimate_alpha_beta(|_| StaticEvolvingGraph::new(generators::path(4)), 4, &cfg);
    }
}
