//! # dynagraph — information spreading in dynamic graphs
//!
//! A faithful, executable reproduction of
//! **Clementi, Silvestri, Trevisan — "Information Spreading in Dynamic
//! Graphs" (PODC 2012, arXiv:1111.0583)**.
//!
//! The paper bounds the *flooding time* — how many synchronous rounds it
//! takes one piece of information to reach every node — of *dynamic graphs*:
//! stochastic processes `G([n], {E_t})` whose edge set changes every round.
//! This crate provides the paper's machinery as a library:
//!
//! * [`Snapshot`] / [`EvolvingGraph`] — the dynamic-graph model of §2: a
//!   synchronous sequence of edge sets over a fixed vertex set `[n]`;
//! * [`delta`] — **delta-native stepping**: [`EdgeDelta`] (one round's
//!   churn) and [`DynAdjacency`] (incremental adjacency with lazy CSR
//!   materialization), so slow-churn processes cost `O(churn)` per round
//!   instead of `O(m + n)`; the module docs spell out the full delta
//!   contract (baselines, rebasing, full-emission triggers);
//! * [`engine`] — **the unified simulation engine**: a builder-driven
//!   Monte-Carlo runner ([`engine::Simulation`]) combining any model
//!   factory with any [`engine::Protocol`] (flooding, push gossip,
//!   parsimonious flooding) and streaming [`engine::Observer`]s, with
//!   deterministic parallel trial execution;
//! * [`shard`] — **intra-trial sharding**: one trial's round loop
//!   (lane-stepped dynamics, partitioned adjacency apply, frontier scan,
//!   commit) partitioned across all cores, byte-identical to the serial
//!   path and exposed as the engine's `.shards(Auto | N)` axis — a
//!   single `n = 10^6` flooding trial saturates the machine;
//! * [`sweep`] — **adaptive parameter-sweep orchestration** over the
//!   engine: declare a [`sweep::Grid`] of cells, and one work-stealing
//!   pool runs `(cell × trial)` items with per-cell sequential stopping
//!   (Student-t CI targets), writing resumable JSON/CSV artifacts
//!   ([`sweep::SweepReport`]) that are byte-identical however the sweep
//!   was scheduled, interrupted, or resumed;
//! * [`flooding`] — the flooding process `I_{t+1} = I_t ∪ N_{E_t}(I_t)`
//!   as single-run primitives with per-round growth records;
//! * [`stationarity`] — empirical estimators for the `(M, α, β)`-stationarity
//!   conditions of §3 (density and β-independence at epoch boundaries);
//! * [`theory`] — every bound in the paper as a documented function
//!   (Theorem 1, Theorem 3, Corollaries 4–6, Appendix-A edge-MEG bounds);
//! * [`node_meg`] — the node-Markovian evolving graphs of §4: one hidden
//!   Markov chain per node plus a symmetric connection map, with *exact*
//!   computation of `P_NM`, `P_NM²` and `η` for finite chains;
//! * [`gossip`] — the §5 extension: randomized push protocols reduced to
//!   flooding on a "virtual" thinned dynamic graph, plus the parsimonious
//!   flooding of \[4\]; the [`ThinnedEvolvingGraph`] /
//!   [`JammedEvolvingGraph`] wrappers behind the reduction are
//!   delta-native (no per-round CSR), byte-identical on both stepping
//!   paths;
//! * [`analysis`] — growth-curve analytics for the spreading/saturation
//!   phase structure of Lemmas 13–14;
//! * [`interval`] — the T-interval connectivity diagnostics of \[21\],
//!   quantifying how far the paper's sparse regimes are from the
//!   worst-case literature's stability assumptions.
//!
//! Concrete model families live in sibling crates: `dg-edge-meg`
//! (Appendix A link-based models) and `dg-mobility` (§4.1 geometric and
//! graph mobility models).
//!
//! # Quickstart
//!
//! Drive any model × protocol combination through the
//! [`engine::Simulation`] builder — it owns seeding, warm-up, the round
//! loop, and (parallel) trial aggregation:
//!
//! ```
//! use dynagraph::engine::Simulation;
//! use dynagraph::StaticEvolvingGraph;
//! use dg_graph::generators;
//!
//! // A static cycle is the degenerate dynamic graph; flooding covers it
//! // in ceil((n-1)/2) rounds.
//! let report = Simulation::builder()
//!     .model(|_seed| StaticEvolvingGraph::new(generators::cycle(10)))
//!     .trials(8)
//!     .max_rounds(100)
//!     .base_seed(7)
//!     .run();
//! assert_eq!(report.incomplete(), 0);
//! assert_eq!(report.mean(), 5.0);
//! ```
//!
//! Swap the protocol without touching the harness:
//!
//! ```
//! use dynagraph::engine::{PushGossip, Simulation};
//! use dynagraph::StaticEvolvingGraph;
//! use dg_graph::generators;
//!
//! let report = Simulation::builder()
//!     .model(|_seed| StaticEvolvingGraph::new(generators::complete(16)))
//!     .protocol(PushGossip::new(1))
//!     .trials(8)
//!     .run();
//! assert_eq!(report.incomplete(), 0);
//! assert!(report.mean() >= 4.0); // push-1 needs ~log2(n)+ln(n) rounds
//! ```
//!
//! Single-run primitives ([`flooding::flood`], [`flooding::flood_multi`])
//! remain available for stepping one realization by hand; on models with
//! native deltas they run a frontier sweep over a [`DynAdjacency`]
//! automatically.
//!
//! # Implementing a model: `step` vs `step_delta`
//!
//! Third-party [`EvolvingGraph`]s only need [`EvolvingGraph::step`]; the
//! default [`EvolvingGraph::step_delta`] diffs consecutive snapshots, so
//! the delta pipeline works (it just doesn't speed anything up).
//! Implement `step_delta` natively — and return `true` from
//! [`EvolvingGraph::has_native_deltas`] — when the model can enumerate
//! its churn directly (edge flips, toggle events, meeting enter/leave);
//! consume exactly the RNG that `step` would, and validate with
//! [`delta::assert_replays_rebuild`]. Consumers pick the fast path
//! automatically ([`engine::Stepping::Auto`]). The [`delta`] module docs
//! carry the decision table and the full contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod delta;
pub mod engine;
mod error;
pub mod flooding;
pub mod gossip;
pub mod interval;
pub mod node_meg;
mod process;
mod recorded;
mod seeds;
pub mod shard;
mod snapshot;
pub mod stationarity;
pub mod sweep;
pub mod theory;

pub use delta::{DynAdjacency, EdgeDelta};
pub use engine::{Simulation, SimulationBuilder, SimulationReport};
pub use error::DynagraphError;
pub use process::{
    assert_reset_matches_fresh, EvolvingGraph, JammedEvolvingGraph, PeriodicEvolvingGraph,
    StaticEvolvingGraph, ThinnedEvolvingGraph,
};
pub use recorded::RecordedEvolution;
pub use seeds::{mix_seed, SeedSequence};
pub use shard::{ShardAccess, ShardLane, Shards};
pub use snapshot::Snapshot;
