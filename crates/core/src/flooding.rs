//! The flooding process of §2: single-run primitives and legacy
//! multi-trial shims.
//!
//! Flooding with source `s`: `I_0 = {s}` and
//! `I_{t+1} = I_t ∪ { j : ∃ i ∈ I_t, {i, j} ∈ E_t }` — newly informed
//! nodes start relaying only in the *next* round. The flooding time
//! `F(G, s)` is the first `t` with `I_t = [n]`.
//!
//! [`flood`] and [`flood_multi`] step one realization by hand (and serve
//! as the independent reference implementation the engine is tested
//! against). On models advertising
//! [`EvolvingGraph::has_native_deltas`] they run a *frontier sweep* over
//! a [`crate::DynAdjacency`] — per-round cost proportional to the
//! frontier's adjacency plus the round's churn, instead of a full
//! `O(m + n)` snapshot rebuild and informed-set scan; the two sweeps
//! produce identical runs. For Monte-Carlo measurement use the unified
//! [`crate::engine::Simulation`] builder; [`run_trials`] remains as a
//! deprecated shim over it.

use dg_stats::{Quantiles, Summary};

use crate::delta::{DynAdjacency, EdgeDelta};
use crate::shard::{flood_sharded_core, ShardScratch, Shards};
use crate::EvolvingGraph;

/// The outcome of one flooding run: who got informed when, and how the
/// informed set grew.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FloodRun {
    source: u32,
    informed_at: Vec<u32>,
    sizes: Vec<u32>,
    completed_at: Option<u32>,
}

impl FloodRun {
    /// Sentinel in [`FloodRun::informed_at`] for nodes the run never
    /// informed. At `n = 10^6` the sentinel vector is 4 MB where
    /// `Vec<Option<u32>>` was 8 MB — and round numbers can never reach
    /// it (`max_rounds < u32::MAX`).
    pub const UNINFORMED: u32 = u32::MAX;

    /// Assembles a run record from raw parts (used by protocol variants in
    /// [`crate::gossip`] that share the flooding bookkeeping).
    pub(crate) fn from_parts(
        source: u32,
        informed_at: Vec<u32>,
        sizes: Vec<u32>,
        completed_at: Option<u32>,
    ) -> Self {
        FloodRun {
            source,
            informed_at,
            sizes,
            completed_at,
        }
    }

    /// The source node `s`.
    pub fn source(&self) -> u32 {
        self.source
    }

    /// The flooding time `F(G, s)` — `None` if the run hit its round cap
    /// before informing everyone.
    pub fn flooding_time(&self) -> Option<u32> {
        self.completed_at
    }

    /// For each node, the round at which it became informed: `0` for the
    /// source, [`FloodRun::UNINFORMED`] if never informed within the
    /// cap. For the `Option` view of a single node use
    /// [`FloodRun::informed_round`].
    pub fn informed_at(&self) -> &[u32] {
        &self.informed_at
    }

    /// The round node `v` became informed — `None` if the run never
    /// reached it (the `Option` accessor over the sentinel encoding).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn informed_round(&self, v: u32) -> Option<u32> {
        let r = self.informed_at[v as usize];
        (r != Self::UNINFORMED).then_some(r)
    }

    /// `sizes[t] = |I_t|`, starting from `sizes[0] = 1`.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Number of nodes informed by the end of the run.
    pub fn informed_count(&self) -> usize {
        *self.sizes.last().expect("sizes always has |I_0|") as usize
    }
}

/// Runs flooding from `source` over `g`, for at most `max_rounds` rounds.
///
/// The process is stepped once per round; the snapshot returned by the
/// first [`EvolvingGraph::step`] plays the role of `E_0`. Warm the process
/// up first (e.g. [`EvolvingGraph::warm_up`]) to measure the *stationary*
/// flooding time the paper bounds.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use dynagraph::{flooding, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let mut g = StaticEvolvingGraph::new(generators::star(6));
/// let run = flooding::flood(&mut g, 1, 10);
/// // Leaf -> center in round 1, center -> all leaves in round 2.
/// assert_eq!(run.flooding_time(), Some(2));
/// ```
pub fn flood<G: EvolvingGraph + ?Sized>(g: &mut G, source: u32, max_rounds: u32) -> FloodRun {
    let n = g.node_count();
    assert!((source as usize) < n, "source {source} out of range");
    flood_core(g, &[source], max_rounds)
}

/// The shared flooding loop behind [`flood`] and [`flood_multi`]:
/// validated sources in, [`FloodRun`] out. Dispatches between the
/// frontier/delta sweep (models with native deltas) and the classic
/// snapshot sweep — both produce identical runs (the property and engine
/// test suites pin this).
fn flood_core<G: EvolvingGraph + ?Sized>(g: &mut G, sources: &[u32], max_rounds: u32) -> FloodRun {
    let n = g.node_count();
    let mut informed = vec![false; n];
    let mut informed_at = vec![FloodRun::UNINFORMED; n];
    let mut informed_list: Vec<u32> = Vec::with_capacity(n);
    for &s in sources {
        informed[s as usize] = true;
        informed_at[s as usize] = 0;
        informed_list.push(s);
    }
    let mut sizes = vec![informed_list.len() as u32];
    let mut completed_at = (informed_list.len() == n).then_some(0u32);
    let mut new_nodes: Vec<u32> = Vec::new();
    let mut t = 0u32;
    if g.has_native_deltas() {
        // Frontier sweep: a node joins I_{t+1} iff it currently neighbors
        // a node informed in round t (the frontier) or an edge created
        // this round links it to any informed node — older informed nodes
        // with older edges would already have delivered. Per-round cost is
        // O(frontier adjacency + churn) instead of O(|I_t| adjacency).
        let mut adj = DynAdjacency::new(n);
        let mut delta = EdgeDelta::new();
        let mut frontier_start = 0usize;
        // Start from a fresh baseline so the first delta carries the full
        // current edge set (the model may have been stepped before).
        g.rebase_deltas();
        while completed_at.is_none() && t < max_rounds {
            g.step_delta(&mut delta);
            adj.apply(&delta);
            new_nodes.clear();
            // Relays must be members of I_t: `informed_at` is still the
            // sentinel for nodes first reached during this scan, so they
            // cannot chain within the round.
            for &(u, v) in delta.added() {
                if informed_at[u as usize] != FloodRun::UNINFORMED && !informed[v as usize] {
                    informed[v as usize] = true;
                    new_nodes.push(v);
                }
                if informed_at[v as usize] != FloodRun::UNINFORMED && !informed[u as usize] {
                    informed[u as usize] = true;
                    new_nodes.push(u);
                }
            }
            for &u in &informed_list[frontier_start..] {
                for &v in adj.neighbors(u) {
                    if !informed[v as usize] {
                        informed[v as usize] = true;
                        new_nodes.push(v);
                    }
                }
            }
            frontier_start = informed_list.len();
            t += 1;
            for &v in &new_nodes {
                informed_at[v as usize] = t;
            }
            informed_list.extend_from_slice(&new_nodes);
            sizes.push(informed_list.len() as u32);
            if informed_list.len() == n {
                completed_at = Some(t);
            }
        }
    } else {
        while completed_at.is_none() && t < max_rounds {
            let snap = g.step();
            new_nodes.clear();
            // Only nodes of I_t relay in round t; `informed_list` is
            // extended after the scan, so same-round chaining cannot
            // occur.
            for &u in &informed_list {
                for &v in snap.neighbors(u) {
                    if !informed[v as usize] {
                        informed[v as usize] = true;
                        new_nodes.push(v);
                    }
                }
            }
            t += 1;
            for &v in &new_nodes {
                informed_at[v as usize] = t;
            }
            informed_list.extend_from_slice(&new_nodes);
            sizes.push(informed_list.len() as u32);
            if informed_list.len() == n {
                completed_at = Some(t);
            }
        }
    }
    FloodRun {
        source: sources[0],
        informed_at,
        sizes,
        completed_at,
    }
}

/// Runs flooding from a *set* of sources — the k-source broadcast
/// variant. `I_0` is the whole source set; the update rule is unchanged.
///
/// Multiple sources can only help: for any realization,
/// `F(G, S ∪ {s}) <= F(G, {s})` pointwise.
///
/// # Panics
///
/// Panics if `sources` is empty, contains duplicates, or contains an
/// out-of-range node.
///
/// # Examples
///
/// ```
/// use dynagraph::{flooding, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let mut g = StaticEvolvingGraph::new(generators::path(9));
/// // Sources at both ends meet in the middle.
/// let run = flooding::flood_multi(&mut g, &[0, 8], 100);
/// assert_eq!(run.flooding_time(), Some(4));
/// ```
pub fn flood_multi<G: EvolvingGraph + ?Sized>(
    g: &mut G,
    sources: &[u32],
    max_rounds: u32,
) -> FloodRun {
    let n = g.node_count();
    assert!(!sources.is_empty(), "need at least one source");
    let mut seen = vec![false; n];
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        assert!(!seen[s as usize], "duplicate source {s}");
        seen[s as usize] = true;
    }
    flood_core(g, sources, max_rounds)
}

/// Runs flooding from `source` on the intra-trial sharded executor: the
/// model's lane decomposition is stepped on `shards` threads and the
/// frontier sweep runs as a partitioned parallel pass (see
/// [`crate::shard`]). The run is byte-identical to [`flood`] on the same
/// model and seed, for every shard count — only wall-clock changes.
///
/// Falls back to [`flood`] when the model exposes no lane decomposition
/// ([`EvolvingGraph::sharding`]) or `shards` resolves to a single
/// thread.
///
/// # Panics
///
/// Panics if `source` is out of range, or if `max_rounds` is
/// `u32::MAX` (reserved as the [`FloodRun::UNINFORMED`] sentinel).
pub fn flood_sharded<G: EvolvingGraph + ?Sized>(
    g: &mut G,
    source: u32,
    max_rounds: u32,
    shards: Shards,
) -> FloodRun {
    let n = g.node_count();
    assert!((source as usize) < n, "source {source} out of range");
    assert_ne!(
        max_rounds,
        u32::MAX,
        "max_rounds must leave room for the uninformed sentinel"
    );
    let threads = shards.resolve();
    if threads < 2 || g.sharding().is_none() {
        return flood(g, source, max_rounds);
    }
    // Same baseline contract as the serial delta sweep: the first round
    // carries the full current edge set.
    g.rebase_deltas();
    let mut scratch = ShardScratch::default();
    let mut sizes = vec![1u32];
    let access = g.sharding().expect("probed above");
    let outcome = flood_sharded_core(
        n,
        access,
        &[source],
        max_rounds,
        threads,
        &mut scratch,
        |ev| sizes.push(ev.informed_count as u32),
    );
    FloodRun {
        source,
        informed_at: std::mem::take(&mut scratch.informed_at),
        sizes,
        completed_at: outcome.completed,
    }
}

/// Configuration for seeded multi-trial flooding experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrialConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial round cap.
    pub max_rounds: u32,
    /// Flooding source.
    pub source: u32,
    /// Base seed; trial `i` uses `mix_seed(base_seed, i)`.
    pub base_seed: u64,
    /// Rounds of warm-up before flooding starts (to reach stationarity).
    pub warm_up: usize,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            trials: 30,
            max_rounds: 100_000,
            source: 0,
            base_seed: 0xD15E_A5E0,
            warm_up: 0,
        }
    }
}

/// Results of a batch of flooding trials.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FloodingTrials {
    times: Vec<Option<u32>>,
}

impl FloodingTrials {
    /// Per-trial flooding times (`None` = hit the cap).
    pub fn times(&self) -> &[Option<u32>] {
        &self.times
    }

    /// Number of trials that failed to complete within the cap.
    pub fn incomplete(&self) -> usize {
        self.times.iter().filter(|t| t.is_none()).count()
    }

    /// Completed flooding times as `f64`s.
    pub fn completed(&self) -> Vec<f64> {
        self.times
            .iter()
            .filter_map(|t| t.map(|x| x as f64))
            .collect()
    }

    /// Streaming summary over completed trials.
    pub fn summary(&self) -> Summary {
        self.completed().into_iter().collect()
    }

    /// Order statistics over completed trials; `None` if no trial
    /// completed.
    pub fn quantiles(&self) -> Option<Quantiles> {
        Quantiles::try_new(self.completed())
    }

    /// Mean flooding time over completed trials (`NaN` if none).
    pub fn mean(&self) -> f64 {
        self.summary().mean()
    }

    /// Empirical 95th percentile — the stand-in for the paper's
    /// with-high-probability bound; `None` if no trial completed.
    pub fn p95(&self) -> Option<f64> {
        self.quantiles().map(|q| q.p95())
    }

    /// Largest completed flooding time; `None` if no trial completed.
    pub fn max(&self) -> Option<f64> {
        self.quantiles().map(|q| q.max())
    }
}

/// Runs `cfg.trials` independent seeded flooding runs.
///
/// Thin shim over the unified engine: equivalent to
/// [`crate::engine::Simulation::builder`] with the
/// [`crate::engine::Flooding`] protocol. Trial `i` receives
/// `mix_seed(cfg.base_seed, i)`, so results are reproducible regardless
/// of thread scheduling — and identical to what the builder reports.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use dynagraph::{flooding::{self, TrialConfig}, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let cfg = TrialConfig { trials: 4, ..TrialConfig::default() };
/// let res = flooding::run_trials(
///     |_seed| StaticEvolvingGraph::new(generators::complete(8)),
///     &cfg,
/// );
/// assert_eq!(res.incomplete(), 0);
/// assert_eq!(res.mean(), 1.0);
/// ```
#[deprecated(
    since = "0.1.0",
    note = "drive the unified engine instead: `dynagraph::engine::Simulation::builder()`"
)]
pub fn run_trials<G, F>(make: F, cfg: &TrialConfig) -> FloodingTrials
where
    G: EvolvingGraph,
    F: Fn(u64) -> G + Sync,
{
    let report = crate::engine::Simulation::builder()
        .model(make)
        .trials(cfg.trials)
        .max_rounds(cfg.max_rounds)
        .warm_up(cfg.warm_up)
        .base_seed(cfg.base_seed)
        .source(cfg.source)
        .run();
    FloodingTrials {
        times: report.times(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the legacy shims stay covered until removal

    use super::*;
    use crate::{PeriodicEvolvingGraph, StaticEvolvingGraph};
    use dg_graph::generators;

    #[test]
    fn complete_graph_one_round() {
        let mut g = StaticEvolvingGraph::new(generators::complete(10));
        let run = flood(&mut g, 3, 10);
        assert_eq!(run.flooding_time(), Some(1));
        assert_eq!(run.sizes(), &[1, 10]);
        assert_eq!(run.informed_at()[3], 0);
        assert_eq!(run.informed_round(3), Some(0));
        assert!(run.informed_at().iter().all(|&x| x != FloodRun::UNINFORMED));
    }

    #[test]
    fn path_floods_in_diameter_rounds() {
        let mut g = StaticEvolvingGraph::new(generators::path(7));
        let run = flood(&mut g, 0, 100);
        assert_eq!(run.flooding_time(), Some(6));
        // From the middle it is the eccentricity.
        let run = flood(&mut g, 3, 100);
        assert_eq!(run.flooding_time(), Some(3));
    }

    #[test]
    fn single_node_floods_instantly() {
        let mut g = StaticEvolvingGraph::new(generators::path(1));
        let run = flood(&mut g, 0, 10);
        assert_eq!(run.flooding_time(), Some(0));
    }

    #[test]
    fn disconnected_never_completes() {
        let g = dg_graph::GraphBuilder::new(4).build();
        let mut g = StaticEvolvingGraph::new(g);
        let run = flood(&mut g, 0, 50);
        assert_eq!(run.flooding_time(), None);
        assert_eq!(run.informed_count(), 1);
        assert_eq!(run.sizes().len(), 51);
    }

    #[test]
    fn no_same_round_chaining() {
        // Path 0-1-2: in one static round, only node 1 learns from 0;
        // node 2 must wait one more round.
        let mut g = StaticEvolvingGraph::new(generators::path(3));
        let run = flood(&mut g, 0, 10);
        assert_eq!(run.informed_round(1), Some(1));
        assert_eq!(run.informed_round(2), Some(2));
    }

    #[test]
    fn monotone_growth() {
        let mut g = StaticEvolvingGraph::new(generators::grid(4, 4));
        let run = flood(&mut g, 0, 100);
        for w in run.sizes().windows(2) {
            assert!(w[0] <= w[1], "informed set must be monotone");
        }
    }

    #[test]
    fn alternating_graphs_combine() {
        // Two halves of a path alternate; flooding must thread through both.
        let mut even = dg_graph::GraphBuilder::new(4);
        even.add_edges([(0, 1), (2, 3)]).unwrap();
        let mut odd = dg_graph::GraphBuilder::new(4);
        odd.add_edges([(1, 2)]).unwrap();
        let mut g = PeriodicEvolvingGraph::new(&[even.build(), odd.build()]).unwrap();
        let run = flood(&mut g, 0, 10);
        // Round 1 (E_0 = even): 1 informed. Round 2 (E_1 = odd): 2 informed.
        // Round 3 (E_2 = even): 3 informed.
        assert_eq!(run.flooding_time(), Some(3));
    }

    #[test]
    fn trials_reproducible() {
        let cfg = TrialConfig {
            trials: 8,
            max_rounds: 100,
            ..TrialConfig::default()
        };
        let make = |_seed: u64| StaticEvolvingGraph::new(generators::cycle(9));
        let a = run_trials(make, &cfg);
        let b = run_trials(make, &cfg);
        assert_eq!(a.times(), b.times());
        assert_eq!(a.incomplete(), 0);
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.p95(), Some(4.0));
        assert_eq!(a.max(), Some(4.0));
    }

    #[test]
    fn trials_count_incomplete() {
        let cfg = TrialConfig {
            trials: 5,
            max_rounds: 2,
            ..TrialConfig::default()
        };
        let res = run_trials(|_| StaticEvolvingGraph::new(generators::path(10)), &cfg);
        assert_eq!(res.incomplete(), 5);
        assert!(res.quantiles().is_none());
        assert!(res.mean().is_nan());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let mut g = StaticEvolvingGraph::new(generators::path(3));
        let _ = flood(&mut g, 3, 10);
    }

    /// Hides a model's native deltas, forcing the snapshot fallback.
    struct ForceRebuild<G>(G);

    impl<G: EvolvingGraph> EvolvingGraph for ForceRebuild<G> {
        fn node_count(&self) -> usize {
            self.0.node_count()
        }
        fn step(&mut self) -> &crate::Snapshot {
            self.0.step()
        }
        fn reset(&mut self, seed: u64) {
            self.0.reset(seed)
        }
    }

    #[test]
    fn frontier_sweep_matches_snapshot_sweep() {
        // The periodic process exercises appearing *and* disappearing
        // edges; the two sweeps must agree run for run, including the
        // per-node informed rounds.
        let mut even = dg_graph::GraphBuilder::new(6);
        even.add_edges([(0, 1), (2, 3), (4, 5)]).unwrap();
        let mut odd = dg_graph::GraphBuilder::new(6);
        odd.add_edges([(1, 2), (3, 4)]).unwrap();
        let graphs = [even.build(), odd.build()];
        for source in 0..6 {
            let delta_path = {
                let mut g = PeriodicEvolvingGraph::new(&graphs).unwrap();
                assert!(g.has_native_deltas());
                flood(&mut g, source, 50)
            };
            let snapshot_path = {
                let mut g = ForceRebuild(PeriodicEvolvingGraph::new(&graphs).unwrap());
                assert!(!g.has_native_deltas());
                flood(&mut g, source, 50)
            };
            assert_eq!(delta_path, snapshot_path, "source {source}");
        }
    }

    #[test]
    fn frontier_sweep_matches_snapshot_sweep_multi_source() {
        let graphs = [generators::path(9), generators::cycle(9)];
        let a = flood_multi(
            &mut PeriodicEvolvingGraph::new(&graphs).unwrap(),
            &[0, 8],
            50,
        );
        let b = flood_multi(
            &mut ForceRebuild(PeriodicEvolvingGraph::new(&graphs).unwrap()),
            &[0, 8],
            50,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn multi_source_helps() {
        let mut g = StaticEvolvingGraph::new(generators::cycle(12));
        let single = flood(&mut g, 0, 100).flooding_time().unwrap();
        let multi = flood_multi(&mut g, &[0, 6], 100).flooding_time().unwrap();
        assert!(multi < single, "multi {multi} vs single {single}");
        assert_eq!(multi, 3); // opposite sources on C12 cover in ceil(10/2/2)... exactly 3
    }

    #[test]
    fn multi_source_single_equals_flood() {
        let mut g = StaticEvolvingGraph::new(generators::grid(3, 4));
        let a = flood(&mut g, 2, 100);
        let b = flood_multi(&mut g, &[2], 100);
        assert_eq!(a, b);
    }

    #[test]
    fn multi_source_all_nodes_instant() {
        let mut g = StaticEvolvingGraph::new(generators::path(4));
        let run = flood_multi(&mut g, &[0, 1, 2, 3], 10);
        assert_eq!(run.flooding_time(), Some(0));
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn multi_source_duplicates_panic() {
        let mut g = StaticEvolvingGraph::new(generators::path(3));
        let _ = flood_multi(&mut g, &[1, 1], 10);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn multi_source_empty_panics() {
        let mut g = StaticEvolvingGraph::new(generators::path(3));
        let _ = flood_multi(&mut g, &[], 10);
    }
}
