//! Property tests for the statistics substrate.

use proptest::prelude::*;

use dg_stats::{log_log_fit, mean_ci95, Grid2d, Histogram, LinearFit, Quantiles, Summary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn summary_merge_equals_sequential(
        a in prop::collection::vec(-1e6f64..1e6, 0..60),
        b in prop::collection::vec(-1e6f64..1e6, 0..60),
    ) {
        let mut merged: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        merged.merge(&right);
        let sequential: Summary = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.len(), sequential.len());
        if !a.is_empty() || !b.is_empty() {
            prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
            prop_assert_eq!(merged.min(), sequential.min());
            prop_assert_eq!(merged.max(), sequential.max());
        }
        if merged.len() >= 2 {
            prop_assert!(
                (merged.sample_variance() - sequential.sample_variance()).abs()
                    < 1e-4 * sequential.sample_variance().abs().max(1.0)
            );
        }
    }

    #[test]
    fn summary_bounds_hold(data in prop::collection::vec(-1e3f64..1e3, 1..80)) {
        let s: Summary = data.iter().copied().collect();
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        if data.len() >= 2 {
            prop_assert!(s.sample_variance() >= -1e-12);
            let ci = mean_ci95(&s).unwrap();
            prop_assert!(ci.contains(s.mean()));
            prop_assert!(ci.lo <= ci.hi);
        }
    }

    #[test]
    fn quantiles_monotone_and_bounded(data in prop::collection::vec(-1e3f64..1e3, 1..60)) {
        let q = Quantiles::new(data);
        let mut last = q.quantile(0.0);
        prop_assert_eq!(last, q.min());
        for i in 1..=10 {
            let v = q.quantile(i as f64 / 10.0);
            prop_assert!(v >= last - 1e-12);
            last = v;
        }
        prop_assert_eq!(q.quantile(1.0), q.max());
    }

    #[test]
    fn histogram_probabilities_normalized(
        data in prop::collection::vec(0.0f64..10.0, 1..100),
        bins in 1usize..20,
    ) {
        let mut h = Histogram::new(0.0, 10.0, bins);
        for x in &data {
            h.push(*x);
        }
        let sum: f64 = h.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(h.total() as usize, data.len());
    }

    #[test]
    fn tv_distance_in_unit_interval(
        a in prop::collection::vec(0.0f64..10.0, 1..60),
        b in prop::collection::vec(0.0f64..10.0, 1..60),
    ) {
        let mut ha = Histogram::new(0.0, 10.0, 8);
        let mut hb = Histogram::new(0.0, 10.0, 8);
        for x in &a { ha.push(*x); }
        for x in &b { hb.push(*x); }
        let tv = ha.tv_distance(&hb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tv));
        prop_assert!(ha.tv_distance(&ha) < 1e-15);
    }

    #[test]
    fn grid2d_mass_conserved(
        pts in prop::collection::vec((0.0f64..5.0, 0.0f64..5.0), 1..80),
        cells in 1usize..10,
    ) {
        let mut g = Grid2d::new(5.0, cells);
        for (x, y) in &pts {
            g.push(*x, *y);
        }
        prop_assert_eq!(g.total() as usize, pts.len());
        let sum: f64 = g.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -10.0f64..10.0,
        intercept in -10.0f64..10.0,
        xs in prop::collection::vec(-100.0f64..100.0, 3..30),
    ) {
        // Need at least two distinct x values.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6);
        prop_assert!((fit.intercept - intercept).abs() < 1e-4);
        prop_assert!(fit.r2 > 1.0 - 1e-9);
    }

    #[test]
    fn log_log_fit_recovers_power_laws(
        exponent in -2.0f64..2.0,
        scale in 0.1f64..10.0,
    ) {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| scale * x.powf(exponent)).collect();
        let fit = log_log_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - exponent).abs() < 1e-9);
    }
}
