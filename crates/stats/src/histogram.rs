//! Empirical distributions: 1-D histograms and 2-D occupancy grids.

/// A fixed-range, equal-width 1-D histogram.
///
/// # Examples
///
/// ```
/// use dg_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [0.5, 1.5, 2.5, 2.6, 9.9] {
///     h.push(x);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.counts()[1], 2); // 2.5 and 2.6 fall in [2, 4)
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    out_of_range: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            out_of_range: 0,
        }
    }

    /// Records one sample. Samples outside `[lo, hi)` are counted in
    /// [`Self::out_of_range`] and excluded from the bins; `hi` itself is
    /// clamped into the last bin.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo || x > self.hi {
            self.out_of_range += 1;
            return;
        }
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = (((x - self.lo) / width) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper edges of the bins: `lo + width`, `lo + 2·width`, …, `hi`.
    ///
    /// This is the bucket geometry shared with `dg-obs` histograms, which
    /// take explicit upper bounds in the Prometheus style.
    pub fn bucket_edges(&self) -> Vec<f64> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        (1..=bins)
            .map(|i| {
                if i == bins {
                    self.hi
                } else {
                    self.lo + width * i as f64
                }
            })
            .collect()
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples rejected for being outside the range (or non-finite).
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Normalized bin probabilities (empty histogram yields all zeros).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Total-variation distance between the normalized bin distributions of
    /// two histograms with the same bin count.
    ///
    /// # Panics
    ///
    /// Panics if the bin counts differ.
    pub fn tv_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histograms must have matching bin counts"
        );
        let p = self.probabilities();
        let q = other.probabilities();
        0.5 * p
            .iter()
            .zip(q.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }
}

/// A 2-D occupancy grid over the square `[0, side) × [0, side)`.
///
/// This is the coarse cell partition used to estimate positional stationary
/// distributions of mobility models (random waypoint center bias, positional
/// TV mixing). Cells are `cells × cells` equal squares.
///
/// # Examples
///
/// ```
/// use dg_stats::Grid2d;
///
/// let mut g = Grid2d::new(10.0, 2);
/// g.push(1.0, 1.0); // cell (0, 0)
/// g.push(6.0, 6.0); // cell (1, 1)
/// assert_eq!(g.total(), 2);
/// assert_eq!(g.count(0, 0), 1);
/// assert_eq!(g.count(1, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grid2d {
    side: f64,
    cells: usize,
    counts: Vec<u64>,
    total: u64,
}

impl Grid2d {
    /// Creates an occupancy grid over `[0, side)²` with `cells × cells`
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or `side` is not a positive finite number.
    pub fn new(side: f64, cells: usize) -> Self {
        assert!(cells > 0, "grid needs at least one cell");
        assert!(side.is_finite() && side > 0.0, "invalid side length");
        Grid2d {
            side,
            cells,
            counts: vec![0; cells * cells],
            total: 0,
        }
    }

    /// Cells per axis.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Records one position; positions are clamped into the square.
    pub fn push(&mut self, x: f64, y: f64) {
        let cx = self.cell_index(x);
        let cy = self.cell_index(y);
        self.counts[cy * self.cells + cx] += 1;
        self.total += 1;
    }

    fn cell_index(&self, v: f64) -> usize {
        let v = v.clamp(0.0, self.side);
        (((v / self.side) * self.cells as f64) as usize).min(self.cells - 1)
    }

    /// Raw count of cell `(cx, cy)` (column, row).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, cx: usize, cy: usize) -> u64 {
        assert!(cx < self.cells && cy < self.cells, "cell out of range");
        self.counts[cy * self.cells + cx]
    }

    /// Total recorded positions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized cell probabilities in row-major order.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Probability of cell `(cx, cy)`.
    pub fn probability(&self, cx: usize, cy: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(cx, cy) as f64 / self.total as f64
        }
    }

    /// Total-variation distance between two occupancy grids with identical
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if the cell counts differ.
    pub fn tv_distance(&self, other: &Grid2d) -> f64 {
        assert_eq!(self.cells, other.cells, "grids must have matching cells");
        let p = self.probabilities();
        let q = other.probabilities();
        0.5 * p
            .iter()
            .zip(q.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// Total-variation distance to an analytic density `f(x, y)` (integrated
    /// per cell by midpoint rule).
    pub fn tv_distance_to_density(&self, density: impl Fn(f64, f64) -> f64) -> f64 {
        let p = self.probabilities();
        let w = self.side / self.cells as f64;
        let mut q = Vec::with_capacity(self.cells * self.cells);
        for cy in 0..self.cells {
            for cx in 0..self.cells {
                let x = (cx as f64 + 0.5) * w;
                let y = (cy as f64 + 0.5) * w;
                q.push(density(x, y) * w * w);
            }
        }
        // Renormalize the midpoint-rule masses to sum to one.
        let z: f64 = q.iter().sum();
        if z > 0.0 {
            for v in &mut q {
                *v /= z;
            }
        }
        0.5 * p
            .iter()
            .zip(q.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.0);
        h.push(0.24);
        h.push(0.25);
        h.push(0.99);
        h.push(1.0); // clamped into last bin
        h.push(-0.1); // out of range
        h.push(f64::NAN); // out of range
        assert_eq!(h.counts(), &[2, 1, 0, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.out_of_range(), 2);
    }

    #[test]
    fn histogram_probabilities_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for i in 0..100 {
            h.push(i as f64 / 10.0);
        }
        let sum: f64 = h.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_distance_identical_is_zero() {
        let mut a = Histogram::new(0.0, 1.0, 3);
        let mut b = Histogram::new(0.0, 1.0, 3);
        for x in [0.1, 0.5, 0.9] {
            a.push(x);
            b.push(x);
        }
        assert_eq!(a.tv_distance(&b), 0.0);
    }

    #[test]
    fn tv_distance_disjoint_is_one() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.push(0.1);
        b.push(0.9);
        assert!((a.tv_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid2d_indexing() {
        let mut g = Grid2d::new(1.0, 4);
        g.push(0.0, 0.0);
        g.push(0.99, 0.99);
        g.push(0.5, 0.0);
        assert_eq!(g.count(0, 0), 1);
        assert_eq!(g.count(3, 3), 1);
        assert_eq!(g.count(2, 0), 1);
        assert_eq!(g.total(), 3);
    }

    #[test]
    fn grid2d_tv_to_uniform_density() {
        // Fill uniformly on cell midpoints; TV to the uniform density ~ 0.
        let mut g = Grid2d::new(1.0, 4);
        for cy in 0..4 {
            for cx in 0..4 {
                for _ in 0..10 {
                    g.push((cx as f64 + 0.5) / 4.0, (cy as f64 + 0.5) / 4.0);
                }
            }
        }
        let tv = g.tv_distance_to_density(|_, _| 1.0);
        assert!(tv < 1e-12, "tv = {tv}");
    }

    #[test]
    fn grid2d_clamps() {
        let mut g = Grid2d::new(1.0, 2);
        g.push(-5.0, 17.0);
        assert_eq!(g.count(0, 1), 1);
    }
}
