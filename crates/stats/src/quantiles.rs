//! Order statistics over a finite sample.

/// Order statistics over an owned sample.
///
/// The flooding-time theorems hold *with high probability*, i.e. for all but
/// a vanishing fraction of runs; the natural empirical analogue is an upper
/// quantile over seeded trials. `Quantiles` sorts once at construction and
/// answers arbitrary quantile queries in `O(1)`.
///
/// Non-finite samples (`NaN`, `±inf`) are rejected at construction by
/// [`Quantiles::try_new`]; [`Quantiles::new`] panics on them.
///
/// # Examples
///
/// ```
/// use dg_stats::Quantiles;
///
/// let q = Quantiles::new(vec![5.0, 1.0, 4.0, 2.0, 3.0]);
/// assert_eq!(q.min(), 1.0);
/// assert_eq!(q.median(), 3.0);
/// assert_eq!(q.max(), 5.0);
/// assert!((q.quantile(0.95) - 4.8).abs() < 1e-12); // linear interpolation
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds order statistics from a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    pub fn new(samples: Vec<f64>) -> Self {
        Self::try_new(samples).expect("samples must be non-empty and finite")
    }

    /// Builds order statistics, returning `None` for an empty sample or one
    /// containing non-finite values.
    pub fn try_new(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        Some(Quantiles { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no samples (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-th quantile with linear interpolation, `q` clamped to
    /// `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dg_stats::Quantiles;
    /// let q = Quantiles::new(vec![0.0, 10.0]);
    /// assert_eq!(q.quantile(0.5), 5.0);
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The 95th percentile — the standard empirical stand-in for a
    /// with-high-probability upper bound.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// The largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// The sorted samples.
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Quantiles::try_new(vec![]).is_none());
        assert!(Quantiles::try_new(vec![1.0, f64::NAN]).is_none());
        assert!(Quantiles::try_new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn median_even_odd() {
        let odd = Quantiles::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(odd.median(), 2.0);
        let even = Quantiles::new(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.median(), 2.5);
    }

    #[test]
    fn extremes() {
        let q = Quantiles::new(vec![7.0, -1.0, 3.5]);
        assert_eq!(q.quantile(0.0), -1.0);
        assert_eq!(q.quantile(1.0), 7.0);
        assert_eq!(q.min(), -1.0);
        assert_eq!(q.max(), 7.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let q = Quantiles::new(vec![1.0, 2.0]);
        assert_eq!(q.quantile(-3.0), 1.0);
        assert_eq!(q.quantile(9.0), 2.0);
    }

    #[test]
    fn single_sample_all_quantiles() {
        let q = Quantiles::new(vec![42.0]);
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(q.quantile(p), 42.0);
        }
    }

    #[test]
    fn interpolation() {
        let q = Quantiles::new(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!((q.quantile(0.25) - 1.0).abs() < 1e-12);
        assert!((q.quantile(0.625) - 2.5).abs() < 1e-12);
    }
}
