//! Normal-approximation confidence intervals.

use crate::Summary;

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// `true` if `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

/// 95% confidence interval for the mean, by the normal approximation
/// (`mean ± 1.96 · stderr`).
///
/// Suitable for the trial counts used in the experiment harness (≥ 30).
/// Returns `None` for fewer than two samples.
///
/// # Examples
///
/// ```
/// use dg_stats::{mean_ci95, Summary};
///
/// let s: Summary = (0..100).map(|i| (i % 10) as f64).collect();
/// let ci = mean_ci95(&s).unwrap();
/// assert!(ci.contains(4.5));
/// ```
pub fn mean_ci95(summary: &Summary) -> Option<ConfidenceInterval> {
    if summary.len() < 2 {
        return None;
    }
    let half = 1.96 * summary.std_err();
    let mean = summary.mean();
    Some(ConfidenceInterval {
        mean,
        lo: mean - half,
        hi: mean + half,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_samples() {
        let mut s = Summary::new();
        assert!(mean_ci95(&s).is_none());
        s.push(1.0);
        assert!(mean_ci95(&s).is_none());
        s.push(2.0);
        assert!(mean_ci95(&s).is_some());
    }

    #[test]
    fn zero_variance_collapses() {
        let s: Summary = [5.0; 10].iter().copied().collect();
        let ci = mean_ci95(&s).unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
        assert_eq!(ci.half_width(), 0.0);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(5.1));
    }

    #[test]
    fn symmetric_around_mean() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].iter().copied().collect();
        let ci = mean_ci95(&s).unwrap();
        assert!((ci.mean - 3.0).abs() < 1e-12);
        assert!(((ci.hi - ci.mean) - (ci.mean - ci.lo)).abs() < 1e-12);
    }
}
