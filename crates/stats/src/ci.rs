//! Normal-approximation confidence intervals.

use crate::Summary;

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// `true` if `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

/// 95% confidence interval for the mean, by the normal approximation
/// (`mean ± 1.96 · stderr`).
///
/// Suitable for the trial counts used in the experiment harness (≥ 30).
/// Returns `None` for fewer than two samples.
///
/// # Examples
///
/// ```
/// use dg_stats::{mean_ci95, Summary};
///
/// let s: Summary = (0..100).map(|i| (i % 10) as f64).collect();
/// let ci = mean_ci95(&s).unwrap();
/// assert!(ci.contains(4.5));
/// ```
pub fn mean_ci95(summary: &Summary) -> Option<ConfidenceInterval> {
    if summary.len() < 2 {
        return None;
    }
    let half = 1.96 * summary.std_err();
    let mean = summary.mean();
    Some(ConfidenceInterval {
        mean,
        lo: mean - half,
        hi: mean + half,
    })
}

/// Two-sided 97.5% quantiles of Student's t distribution for
/// `df = 1..=30`; beyond the table the asymptotic expansion in
/// [`student_t_975`] is within 1e-4 of the exact value.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 97.5% quantile of Student's t distribution with `df` degrees of
/// freedom — the critical value of a two-sided 95% interval.
///
/// Exact table values for `df <= 30`; the Cornish–Fisher expansion
/// around the normal quantile beyond that (error < 1e-4). Returns
/// `f64::INFINITY` for `df == 0`.
///
/// # Examples
///
/// ```
/// use dg_stats::student_t_975;
/// assert!((student_t_975(1) - 12.706).abs() < 1e-9);
/// assert!((student_t_975(1_000_000) - 1.96).abs() < 1e-3);
/// ```
pub fn student_t_975(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_975[(df - 1) as usize],
        _ => {
            // Cornish–Fisher expansion of t_{0.975, nu} around z_{0.975}.
            let z = 1.959_963_984_540_054f64;
            let nu = df as f64;
            let z3 = z * z * z;
            let z5 = z3 * z * z;
            z + (z3 + z) / (4.0 * nu) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * nu * nu)
        }
    }
}

/// 95% confidence interval for the mean using Student's t critical value
/// with `n - 1` degrees of freedom.
///
/// The honest small-sample interval for the adaptive trial scheduler in
/// `dynagraph::sweep`, which stops cells at whatever trial count first
/// meets a half-width target — often far below the `n >= 30` the normal
/// approximation of [`mean_ci95`] assumes. Coincides with `mean_ci95` as
/// `n` grows. Returns `None` for fewer than two samples.
///
/// # Examples
///
/// ```
/// use dg_stats::{mean_ci95, mean_ci95_t, Summary};
///
/// let s: Summary = [4.0, 6.0, 5.0, 7.0].iter().copied().collect();
/// let t = mean_ci95_t(&s).unwrap();
/// let z = mean_ci95(&s).unwrap();
/// // Same center, wider interval: t_{0.975,3} = 3.182 > 1.96.
/// assert_eq!(t.mean, z.mean);
/// assert!(t.half_width() > z.half_width());
/// ```
pub fn mean_ci95_t(summary: &Summary) -> Option<ConfidenceInterval> {
    if summary.len() < 2 {
        return None;
    }
    let half = student_t_975(summary.len() as u64 - 1) * summary.std_err();
    let mean = summary.mean();
    Some(ConfidenceInterval {
        mean,
        lo: mean - half,
        hi: mean + half,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_samples() {
        let mut s = Summary::new();
        assert!(mean_ci95(&s).is_none());
        s.push(1.0);
        assert!(mean_ci95(&s).is_none());
        s.push(2.0);
        assert!(mean_ci95(&s).is_some());
    }

    #[test]
    fn zero_variance_collapses() {
        let s: Summary = [5.0; 10].iter().copied().collect();
        let ci = mean_ci95(&s).unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
        assert_eq!(ci.half_width(), 0.0);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(5.1));
    }

    #[test]
    fn symmetric_around_mean() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].iter().copied().collect();
        let ci = mean_ci95(&s).unwrap();
        assert!((ci.mean - 3.0).abs() < 1e-12);
        assert!(((ci.hi - ci.mean) - (ci.mean - ci.lo)).abs() < 1e-12);
    }

    #[test]
    fn t_quantiles_decrease_toward_normal() {
        assert_eq!(student_t_975(0), f64::INFINITY);
        for df in 1..200u64 {
            assert!(
                student_t_975(df) > student_t_975(df + 1),
                "not monotone at df {df}"
            );
        }
        // Table-to-expansion seam (df 30 -> 31) stays monotone and close.
        assert!((student_t_975(31) - 2.0395).abs() < 1e-3);
        assert!((student_t_975(10_000) - 1.9602).abs() < 1e-3);
    }

    #[test]
    fn t_interval_needs_two_samples_and_widens() {
        let mut s = Summary::new();
        s.push(1.0);
        assert!(mean_ci95_t(&s).is_none());
        s.push(3.0);
        let two = mean_ci95_t(&s).unwrap();
        // df = 1: half-width = 12.706 * std_err = 12.706 * 1.0.
        assert!((two.half_width() - 12.706).abs() < 1e-9);
        let big: Summary = (0..400).map(|i| (i % 7) as f64).collect();
        let t = mean_ci95_t(&big).unwrap();
        let z = mean_ci95(&big).unwrap();
        assert!((t.half_width() - z.half_width()).abs() / z.half_width() < 0.01);
    }
}
