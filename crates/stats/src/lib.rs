//! Statistics substrate for the `dynspread` workspace.
//!
//! The experiment harness of the PODC 2012 reproduction needs a small,
//! dependency-free toolkit to turn raw Monte-Carlo samples into the
//! quantities reported in `EXPERIMENTS.md`:
//!
//! * [`Summary`] — streaming mean/variance/min/max (Welford's algorithm);
//! * [`Quantiles`] — order statistics (median, p95, ...) used to read
//!   "with high probability" bounds off simulation data;
//! * [`Histogram`] and [`Grid2d`] — empirical distributions, including the
//!   positional occupancy distributions of mobility models, with
//!   total-variation distance between them;
//! * [`LinearFit`] — least-squares fits, including log–log fits that extract
//!   empirical scaling exponents (e.g. the `√n` flooding of the sparse
//!   random-waypoint regime);
//! * [`mean_ci95`] / [`mean_ci95_t`] — normal-approximation and
//!   Student-t confidence intervals (the latter drives the sequential
//!   stopping rule of `dynagraph::sweep`).
//!
//! # Examples
//!
//! ```
//! use dg_stats::{Summary, Quantiles};
//!
//! let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
//! let summary: Summary = samples.iter().copied().collect();
//! assert_eq!(summary.len(), 8);
//! assert!((summary.mean() - 3.875).abs() < 1e-12);
//!
//! let q = Quantiles::new(samples.to_vec());
//! assert_eq!(q.median(), 3.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ci;
mod histogram;
mod quantiles;
mod regression;
mod summary;

pub use ci::{mean_ci95, mean_ci95_t, student_t_975, ConfidenceInterval};
pub use histogram::{Grid2d, Histogram};
pub use quantiles::Quantiles;
pub use regression::{log_log_fit, LinearFit};
pub use summary::Summary;
