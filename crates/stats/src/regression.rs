//! Ordinary least-squares line fitting, with a log–log helper for
//! extracting empirical scaling exponents.

/// Result of an ordinary least-squares fit `y ≈ slope · x + intercept`.
///
/// # Examples
///
/// ```
/// use dg_stats::LinearFit;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [3.0, 5.0, 7.0, 9.0];
/// let fit = LinearFit::fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!(fit.r2 > 0.9999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 for a constant target).
    pub r2: f64,
}

impl LinearFit {
    /// Fits a line by ordinary least squares.
    ///
    /// Returns `None` when fewer than two points are given, when lengths
    /// mismatch, when any value is non-finite, or when all `x` are equal.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
        if xs.len() != ys.len() || xs.len() < 2 {
            return None;
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return None;
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r2 = if syy == 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Some(LinearFit {
            slope,
            intercept,
            r2,
        })
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `log y ≈ slope · log x + c`, i.e. extracts the exponent of a power
/// law `y ∝ x^slope`.
///
/// Returns `None` under the same conditions as [`LinearFit::fit`], or when
/// any input is non-positive (logs must exist).
///
/// # Examples
///
/// ```
/// use dg_stats::log_log_fit;
///
/// // y = 3 * x^2
/// let xs = [1.0, 2.0, 4.0, 8.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
/// let fit = log_log_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-9);
/// ```
pub fn log_log_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.iter().chain(ys.iter()).any(|&v| v <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    LinearFit::fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 3.0, 5.0];
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(LinearFit::fit(&[1.0], &[1.0]).is_none());
        assert!(LinearFit::fit(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(LinearFit::fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(LinearFit::fit(&[1.0, f64::NAN], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn constant_target_r2_is_one() {
        let f = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn noisy_r2_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 3.0, 2.0, 4.0];
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!(f.r2 < 1.0);
        assert!(f.r2 > 0.0);
    }

    #[test]
    fn log_log_sqrt_exponent() {
        let xs = [16.0, 64.0, 256.0, 1024.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 7.0 * x.sqrt()).collect();
        let f = log_log_fit(&xs, &ys).unwrap();
        assert!((f.slope - 0.5).abs() < 1e-9);
    }

    #[test]
    fn log_log_rejects_nonpositive() {
        assert!(log_log_fit(&[1.0, 0.0], &[1.0, 1.0]).is_none());
        assert!(log_log_fit(&[1.0, 2.0], &[-1.0, 1.0]).is_none());
    }
}
