//! Streaming univariate summaries (Welford's online algorithm).

use core::fmt;

/// A streaming summary of a sequence of `f64` samples.
///
/// Uses Welford's numerically stable online algorithm, so it can absorb an
/// unbounded stream in `O(1)` memory. Two summaries can be merged with
/// [`Summary::merge`], which makes it usable from per-thread workers.
///
/// # Examples
///
/// ```
/// use dg_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.len(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorbs one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples absorbed so far.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// `true` if no samples were absorbed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sum of the samples (`mean * count`).
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Unbiased sample variance (divides by `n - 1`); `NaN` for fewer than
    /// two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (square root of [`Self::sample_variance`]).
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `std_dev / sqrt(n)`.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }

    /// Smallest sample; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one, as if all of `other`'s samples
    /// had been pushed here.
    ///
    /// # Examples
    ///
    /// ```
    /// use dg_stats::Summary;
    ///
    /// let mut a: Summary = [1.0, 2.0].iter().copied().collect();
    /// let b: Summary = [3.0, 4.0].iter().copied().collect();
    /// a.merge(&b);
    /// assert_eq!(a.len(), 4);
    /// assert_eq!(a.mean(), 2.5);
    /// ```
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_nan_mean() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert!(s.sample_variance().is_nan());
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.push(42.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.sample_variance().is_nan());
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let sequential: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..37].iter().copied().collect();
        let right: Summary = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.len(), sequential.len());
        assert!((left.mean() - sequential.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - sequential.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0, 3.0].iter().copied().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0].iter().copied().collect();
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn sum_matches() {
        let s: Summary = [1.5, 2.5, 3.0].iter().copied().collect();
        assert!((s.sum() - 7.0).abs() < 1e-12);
    }
}
