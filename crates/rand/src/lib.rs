//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this shim as a path dependency named `rand`. It provides:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic PRNG
//!   (xoshiro256++), seedable from a `u64`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive), [`Rng::gen`] for `f64`/`f32`/`bool`/unsigned ints, and
//!   [`Rng::gen_bool`].
//!
//! Streams are deterministic per seed and decorrelated across seeds via a
//! SplitMix64 initializer, matching the reproducibility contract the rest
//! of the workspace relies on. The concrete value streams differ from the
//! real `rand` crate — all in-tree consumers are statistical and only
//! require determinism, not bit-compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// xoshiro256++ — the "small rng": fast, 256-bit state, excellent
    /// statistical quality for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed, expanding it into
    /// the full internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw generator interface: a source of uniform machine words.
pub trait RngCore {
    /// The next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// The next uniform `u32`.
    fn next_u32(&mut self) -> u32;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A uniform value in `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform integer in `[0, span)` via the widening-multiply method.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types samplable uniformly from a range (the shim's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`high` excluded) or
    /// `[low, high]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u64;
                assert!(span > 0, "cannot sample from empty range");
                (lo + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let u = unit_f64(rng) as $t;
                low + (high - low) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Types producible by [`Rng::gen`] (the shim's `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from the type's standard distribution (uniform
    /// over the domain; `[0, 1)` for floats).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A value from the type's standard distribution (`[0, 1)` for
    /// floats, uniform for integers and `bool`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 100_000;
        let mut counts = [0u32; 8];
        for _ in 0..trials {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        let expected = trials as f64 / 8.0;
        for c in counts {
            assert!((c as f64 - expected).abs() < 0.05 * expected, "count {c}");
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng2 = SmallRng::seed_from_u64(6);
        assert!((0..100).all(|_| !rng2.gen_bool(0.0)));
        assert!((0..100).all(|_| rng2.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
