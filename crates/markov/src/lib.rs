//! Finite Markov chain substrate for the `dynspread` workspace.
//!
//! Every model in Clementi–Silvestri–Trevisan (PODC 2012) is driven by
//! Markov chains: node-MEGs attach a chain `M = (S, P)` to every node
//! (§4), edge-MEGs attach a chain to every edge (Appendix A), and all of
//! the paper's bounds are stated in terms of the chain's **mixing time**
//! and **stationary distribution**. This crate provides:
//!
//! * [`ProbDist`] — validated probability vectors with total-variation
//!   distance;
//! * [`DenseChain`] — row-stochastic transition matrices with stationary
//!   distribution (power iteration), ergodicity checks, exact worst-case
//!   mixing time `t_mix(ε)` via repeated squaring, and per-step sampling;
//! * [`TwoStateChain`] — the edge-MEG birth/death chain in closed form;
//! * [`samplers`] — categorical and Walker-alias samplers;
//! * [`random_walk_chain`] — the (lazy) random walk chain of a
//!   [`dg_graph::Graph`] mobility graph.
//!
//! # Examples
//!
//! ```
//! use dg_markov::TwoStateChain;
//!
//! let chain = TwoStateChain::new(0.2, 0.3).unwrap();
//! assert!((chain.stationary_on() - 0.4).abs() < 1e-12);
//! let dense = chain.to_dense();
//! let pi = dense.stationary(1e-12, 100_000).unwrap();
//! assert!((pi.as_slice()[1] - 0.4).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod dist;
mod error;
pub mod samplers;
pub mod spectral;
mod two_state;
mod walk;

pub use dense::DenseChain;
pub use dist::ProbDist;
pub use error::MarkovError;
pub use two_state::TwoStateChain;
pub use walk::random_walk_chain;
