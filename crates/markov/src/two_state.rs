//! The two-state birth/death chain of the basic edge-MEG, in closed form.

use crate::{DenseChain, MarkovError};

/// The two-state (off/on) Markov chain of Appendix A: an absent edge is
/// born with probability `p` per step; a present edge dies with
/// probability `q` per step.
///
/// State 0 = off, state 1 = on. Closed forms:
/// * stationary on-probability `π_on = p / (p + q)`;
/// * second eigenvalue `λ = 1 − p − q`, so the worst-case TV distance at
///   time `t` is `max(π_on, π_off) · |λ|^t` and
///   `T_mix = Θ(1/(p + q))` as the paper states.
///
/// # Examples
///
/// ```
/// use dg_markov::TwoStateChain;
///
/// let c = TwoStateChain::new(0.1, 0.3).unwrap();
/// assert!((c.stationary_on() - 0.25).abs() < 1e-12);
/// assert_eq!(c.to_dense().state_count(), 2);
/// assert!(c.mixing_time(0.01).unwrap() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoStateChain {
    birth: f64,
    death: f64,
}

impl TwoStateChain {
    /// Creates the chain with birth rate `p` and death rate `q`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::ParameterOutOfRange`] unless both rates are
    /// in `[0, 1]`, and [`MarkovError::NotErgodic`] when `p + q = 0` or
    /// `p = q = 1` (a frozen or perfectly periodic chain).
    pub fn new(birth: f64, death: f64) -> Result<Self, MarkovError> {
        for (name, value) in [("birth", birth), ("death", death)] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(MarkovError::ParameterOutOfRange { name, value });
            }
        }
        if birth + death == 0.0 || (birth == 1.0 && death == 1.0) {
            return Err(MarkovError::NotErgodic);
        }
        Ok(TwoStateChain { birth, death })
    }

    /// Birth rate `p` (off → on probability).
    pub fn birth(&self) -> f64 {
        self.birth
    }

    /// Death rate `q` (on → off probability).
    pub fn death(&self) -> f64 {
        self.death
    }

    /// Stationary on-probability `p / (p + q)` — the edge density `α` of
    /// the stationary edge-MEG.
    pub fn stationary_on(&self) -> f64 {
        self.birth / (self.birth + self.death)
    }

    /// The second eigenvalue `λ = 1 − p − q` governing convergence.
    pub fn second_eigenvalue(&self) -> f64 {
        1.0 - self.birth - self.death
    }

    /// Worst-case total-variation distance from stationarity after `t`
    /// steps: `max(π_on, π_off) · |λ|^t`.
    pub fn worst_tv_at(&self, t: u32) -> f64 {
        let pi_on = self.stationary_on();
        pi_on.max(1.0 - pi_on) * self.second_eigenvalue().abs().powi(t as i32)
    }

    /// Closed-form mixing time `min { t : worst-case TV ≤ eps }`.
    ///
    /// Returns `None` when `λ = 0` never happens to need a step (i.e. the
    /// chain mixes in one step, in which case `Some(1)` is returned) — in
    /// practice always `Some`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1)`.
    pub fn mixing_time(&self, eps: f64) -> Option<usize> {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        let lambda = self.second_eigenvalue().abs();
        if self.worst_tv_at(0) <= eps {
            return Some(0);
        }
        if lambda == 0.0 {
            return Some(1);
        }
        let pi_max = self.stationary_on().max(1.0 - self.stationary_on());
        // Smallest t with pi_max * lambda^t <= eps.
        let t = ((eps / pi_max).ln() / lambda.ln()).ceil();
        Some(t.max(1.0) as usize)
    }

    /// The equivalent [`DenseChain`] (state 0 = off, state 1 = on).
    pub fn to_dense(&self) -> DenseChain {
        DenseChain::from_rows(vec![
            vec![1.0 - self.birth, self.birth],
            vec![self.death, 1.0 - self.death],
        ])
        .expect("two-state rows are stochastic by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(TwoStateChain::new(-0.1, 0.5).is_err());
        assert!(TwoStateChain::new(0.5, 1.5).is_err());
        assert!(TwoStateChain::new(0.0, 0.0).is_err());
        assert!(TwoStateChain::new(1.0, 1.0).is_err());
        assert!(TwoStateChain::new(0.0, 0.5).is_ok()); // absorbing off is still ergodic-ish: p=0 => chain converges to off
    }

    #[test]
    fn stationary_matches_dense() {
        let c = TwoStateChain::new(0.15, 0.45).unwrap();
        let pi = c.to_dense().stationary(1e-13, 1_000_000).unwrap();
        assert!((pi.prob(1) - c.stationary_on()).abs() < 1e-9);
    }

    #[test]
    fn closed_form_mixing_matches_dense() {
        let c = TwoStateChain::new(0.05, 0.1).unwrap();
        let closed = c.mixing_time(0.01).unwrap();
        let exact = c.to_dense().mixing_time(0.01, 1 << 20).unwrap();
        // The closed form is exactly the dense computation up to rounding.
        assert!(
            (closed as i64 - exact as i64).abs() <= 1,
            "closed {closed} vs exact {exact}"
        );
    }

    #[test]
    fn mixing_scales_inverse_p_plus_q() {
        let fast = TwoStateChain::new(0.2, 0.2).unwrap();
        let slow = TwoStateChain::new(0.02, 0.02).unwrap();
        let tf = fast.mixing_time(0.01).unwrap() as f64;
        let ts = slow.mixing_time(0.01).unwrap() as f64;
        // The exact rate is 1/ln(1/λ) which approaches 1/(p+q) only for
        // small rates; allow generous slack around the 10x prediction.
        let ratio = ts / tf;
        assert!(ratio > 5.0 && ratio < 20.0, "ratio = {ratio}");
    }

    #[test]
    fn tv_decays_geometrically() {
        let c = TwoStateChain::new(0.3, 0.2).unwrap();
        assert!(c.worst_tv_at(0) > c.worst_tv_at(1));
        assert!(c.worst_tv_at(1) > c.worst_tv_at(5));
        let lambda = c.second_eigenvalue().abs();
        assert!((c.worst_tv_at(3) / c.worst_tv_at(2) - lambda).abs() < 1e-12);
    }

    #[test]
    fn instant_mixing_when_lambda_zero() {
        let c = TwoStateChain::new(0.5, 0.5).unwrap();
        assert_eq!(c.second_eigenvalue(), 0.0);
        assert_eq!(c.mixing_time(0.01), Some(1));
    }
}
