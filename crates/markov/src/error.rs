//! Error type for chain and distribution construction.

use core::fmt;

/// Errors from constructing or analyzing Markov chains.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A probability vector had negative entries, non-finite entries, or
    /// did not sum to 1 (within tolerance).
    InvalidDistribution {
        /// The offending sum (or NaN).
        sum: f64,
    },
    /// A transition-matrix row was not a probability distribution.
    InvalidRow {
        /// Index of the offending row.
        row: usize,
        /// The row sum found.
        sum: f64,
    },
    /// A matrix was not square, or dimensions disagreed between operands.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// The chain is not ergodic (irreducible + aperiodic), so the requested
    /// quantity (stationary distribution, mixing time) is undefined.
    NotErgodic,
    /// An iterative computation failed to converge within its budget.
    NoConvergence {
        /// The iteration budget that was exhausted.
        max_iterations: usize,
    },
    /// A chain parameter (probability) was outside `[0, 1]`.
    ParameterOutOfRange {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidDistribution { sum } => {
                write!(f, "invalid probability distribution (sum = {sum})")
            }
            MarkovError::InvalidRow { row, sum } => {
                write!(f, "transition row {row} is not stochastic (sum = {sum})")
            }
            MarkovError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MarkovError::NotErgodic => write!(f, "chain is not ergodic"),
            MarkovError::NoConvergence { max_iterations } => {
                write!(f, "no convergence within {max_iterations} iterations")
            }
            MarkovError::ParameterOutOfRange { name, value } => {
                write!(f, "parameter {name} = {value} out of range [0, 1]")
            }
        }
    }
}

impl std::error::Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errors = [
            MarkovError::InvalidDistribution { sum: 0.9 },
            MarkovError::InvalidRow { row: 2, sum: 1.5 },
            MarkovError::DimensionMismatch {
                expected: 3,
                found: 4,
            },
            MarkovError::NotErgodic,
            MarkovError::NoConvergence { max_iterations: 10 },
            MarkovError::ParameterOutOfRange {
                name: "p",
                value: 2.0,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
