//! Random walk chains on mobility graphs.

use dg_graph::Graph;

use crate::{DenseChain, MarkovError};

/// Builds the (lazy) random walk chain on a mobility graph `H`: from `u`,
/// stay put with probability `laziness`, otherwise move to a uniformly
/// random neighbour.
///
/// With `laziness = 0` this is the plain random walk of §4.1 (`ρ = 1`);
/// a positive laziness guarantees aperiodicity (used when computing exact
/// mixing times on bipartite graphs like grids).
///
/// # Errors
///
/// Returns [`MarkovError::NotErgodic`] when some node is isolated and
/// `laziness < 1` (the walk would have nowhere to go), or when the graph is
/// empty.
///
/// # Examples
///
/// ```
/// use dg_graph::generators;
/// use dg_markov::random_walk_chain;
///
/// let g = generators::cycle(6);
/// let chain = random_walk_chain(&g, 0.5).unwrap();
/// let pi = chain.stationary(1e-12, 100_000).unwrap();
/// // Regular graph: uniform stationary distribution.
/// assert!((pi.prob(0) - 1.0 / 6.0).abs() < 1e-8);
/// ```
pub fn random_walk_chain(g: &Graph, laziness: f64) -> Result<DenseChain, MarkovError> {
    if !(0.0..=1.0).contains(&laziness) {
        return Err(MarkovError::ParameterOutOfRange {
            name: "laziness",
            value: laziness,
        });
    }
    let n = g.node_count();
    if n == 0 {
        return Err(MarkovError::DimensionMismatch {
            expected: 1,
            found: 0,
        });
    }
    let mut rows = vec![vec![0.0; n]; n];
    for u in g.nodes() {
        let deg = g.degree(u);
        if deg == 0 {
            if laziness < 1.0 {
                return Err(MarkovError::NotErgodic);
            }
            rows[u as usize][u as usize] = 1.0;
            continue;
        }
        rows[u as usize][u as usize] = laziness;
        let move_p = (1.0 - laziness) / deg as f64;
        for &v in g.neighbors(u) {
            rows[u as usize][v as usize] = move_p;
        }
    }
    DenseChain::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;

    #[test]
    fn stationary_proportional_to_degree() {
        // Star graph: center degree n-1, leaves degree 1.
        let g = generators::star(5);
        let c = random_walk_chain(&g, 0.5).unwrap();
        let pi = c.stationary(1e-13, 1_000_000).unwrap();
        // pi(u) = deg(u) / 2m; m = 4, so center = 4/8, leaf = 1/8.
        assert!((pi.prob(0) - 0.5).abs() < 1e-8);
        assert!((pi.prob(1) - 0.125).abs() < 1e-8);
    }

    #[test]
    fn isolated_node_rejected() {
        let g = dg_graph::GraphBuilder::new(2).build();
        assert_eq!(random_walk_chain(&g, 0.0), Err(MarkovError::NotErgodic));
    }

    #[test]
    fn bipartite_needs_laziness_for_ergodicity() {
        let g = generators::cycle(4); // bipartite
        let plain = random_walk_chain(&g, 0.0).unwrap();
        assert_eq!(plain.period(), 2);
        let lazy = random_walk_chain(&g, 0.1).unwrap();
        assert!(lazy.is_ergodic());
    }

    #[test]
    fn grid_mixing_time_reasonable() {
        let g = generators::grid(4, 4);
        let c = random_walk_chain(&g, 0.5).unwrap();
        let t = c.mixing_time(0.05, 1 << 20).unwrap();
        assert!(t > 4, "t = {t}");
        assert!(t < 1000, "t = {t}");
    }

    #[test]
    fn laziness_out_of_range() {
        let g = generators::cycle(3);
        assert!(random_walk_chain(&g, -0.5).is_err());
        assert!(random_walk_chain(&g, 1.5).is_err());
    }
}
