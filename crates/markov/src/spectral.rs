//! Spectral analysis of reversible chains: spectral gap and relaxation
//! time.
//!
//! The mixing-time bounds the paper imports (\[1\], Aldous–Fill) are
//! usually proved through the relaxation time `1/γ` where
//! `γ = 1 − λ₂` is the spectral gap. For reversible chains we compute
//! `λ₂` by power iteration on the similarity-symmetrized kernel
//! `S = D^{1/2} P D^{-1/2}` (with `D = diag(π)`), deflating the known top
//! eigenvector `√π`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{DenseChain, MarkovError, ProbDist};

/// Spectral summary of a reversible ergodic chain.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Spectrum {
    /// Second-largest eigenvalue magnitude `λ*` of the chain.
    pub lambda_star: f64,
    /// Spectral gap `γ = 1 − λ*`.
    pub gap: f64,
    /// Relaxation time `1/γ` (`inf` when the gap vanishes numerically).
    pub relaxation_time: f64,
}

/// `true` if the chain is reversible w.r.t. `pi` (detailed balance
/// `π(i)P(i,j) = π(j)P(j,i)` within tolerance).
pub fn is_reversible(chain: &DenseChain, pi: &ProbDist, tol: f64) -> bool {
    let k = chain.state_count();
    if pi.len() != k {
        return false;
    }
    for i in 0..k {
        for j in (i + 1)..k {
            let forward = pi.prob(i) * chain.transition(i, j);
            let backward = pi.prob(j) * chain.transition(j, i);
            if (forward - backward).abs() > tol * (forward + backward).max(1e-300) {
                return false;
            }
        }
    }
    true
}

/// Computes the spectral gap of a **reversible** ergodic chain by power
/// iteration with deflation of the top eigenvector.
///
/// # Errors
///
/// Returns [`MarkovError::NotErgodic`] for non-ergodic chains and
/// [`MarkovError::InvalidDistribution`] when the chain is not reversible
/// w.r.t. its stationary distribution (the symmetrization would be
/// invalid), or [`MarkovError::NoConvergence`] if power iteration fails
/// to settle within `max_iterations`.
///
/// # Examples
///
/// ```
/// use dg_markov::{spectral, TwoStateChain};
///
/// // Two-state chain: the exact gap is p + q.
/// let c = TwoStateChain::new(0.2, 0.3).unwrap();
/// let s = spectral::spectrum(&c.to_dense(), 1e-10, 100_000).unwrap();
/// assert!((s.gap - 0.5).abs() < 1e-6);
/// ```
pub fn spectrum(
    chain: &DenseChain,
    tol: f64,
    max_iterations: usize,
) -> Result<Spectrum, MarkovError> {
    if !chain.is_ergodic() {
        return Err(MarkovError::NotErgodic);
    }
    let pi = chain.stationary(1e-13, 1_000_000)?;
    if !is_reversible(chain, &pi, 1e-8) {
        return Err(MarkovError::InvalidDistribution { sum: f64::NAN });
    }
    let k = chain.state_count();
    // Top eigenvector of S = D^{1/2} P D^{-1/2} is v1 = sqrt(pi).
    let v1: Vec<f64> = (0..k).map(|i| pi.prob(i).sqrt()).collect();
    // S(i, j) = sqrt(pi_i) P(i, j) / sqrt(pi_j).
    let apply_s = |x: &[f64], out: &mut [f64]| {
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                let s_ij = v1[i] * chain.transition(i, j) / v1[j];
                acc += s_ij * xj;
            }
            *o = acc;
        }
    };
    // Power iteration on the deflated operator S - v1 v1^T.
    let mut rng = SmallRng::seed_from_u64(0x5BEC);
    let mut x: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() - 0.5).collect();
    deflate(&mut x, &v1);
    normalize(&mut x);
    let mut out = vec![0.0; k];
    let mut lambda = 0.0f64;
    for _ in 0..max_iterations {
        apply_s(&x, &mut out);
        deflate(&mut out, &v1);
        let norm = out.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            // The deflated operator annihilates everything: gap = 1.
            return Ok(Spectrum {
                lambda_star: 0.0,
                gap: 1.0,
                relaxation_time: 1.0,
            });
        }
        for (xi, oi) in x.iter_mut().zip(&out) {
            *xi = oi / norm;
        }
        // The power iteration converges on |lambda_2|; the Rayleigh
        // quotient gives a signed estimate whose magnitude we track.
        let new_lambda = norm;
        if (new_lambda - lambda).abs() <= tol * new_lambda.max(1e-12) {
            let lambda_star = new_lambda.min(1.0);
            return Ok(Spectrum {
                lambda_star,
                gap: 1.0 - lambda_star,
                relaxation_time: if lambda_star < 1.0 {
                    1.0 / (1.0 - lambda_star)
                } else {
                    f64::INFINITY
                },
            });
        }
        lambda = new_lambda;
    }
    Err(MarkovError::NoConvergence { max_iterations })
}

fn deflate(x: &mut [f64], v1: &[f64]) {
    let dot: f64 = x.iter().zip(v1).map(|(a, b)| a * b).sum();
    for (xi, &vi) in x.iter_mut().zip(v1) {
        *xi -= dot * vi;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_walk_chain, TwoStateChain};

    #[test]
    fn two_state_gap_exact() {
        for (p, q) in [(0.1, 0.2), (0.3, 0.3), (0.05, 0.6)] {
            let c = TwoStateChain::new(p, q).unwrap().to_dense();
            let s = spectrum(&c, 1e-11, 200_000).unwrap();
            assert!(
                (s.gap - (p + q)).abs() < 1e-5,
                "p={p} q={q}: gap {} vs {}",
                s.gap,
                p + q
            );
        }
    }

    #[test]
    fn complete_graph_walk_gap() {
        // Lazy walk on K_k: P = 1/2 I + 1/2 W; W has lambda_2 = -1/(k-1),
        // so the lazy chain's lambda_2 = 1/2 - 1/(2(k-1)).
        let k = 6;
        let g = dg_graph::generators::complete(k);
        let chain = random_walk_chain(&g, 0.5).unwrap();
        let s = spectrum(&chain, 1e-11, 200_000).unwrap();
        let expected = 0.5 - 0.5 / (k as f64 - 1.0);
        assert!(
            (s.lambda_star - expected).abs() < 1e-5,
            "lambda {} vs {expected}",
            s.lambda_star
        );
    }

    #[test]
    fn relaxation_tracks_mixing_on_cycles() {
        // Relaxation time and exact mixing time scale together on cycles.
        let t = |k: usize| {
            let g = dg_graph::generators::cycle(k);
            let chain = random_walk_chain(&g, 0.5).unwrap();
            let s = spectrum(&chain, 1e-10, 500_000).unwrap();
            let mix = chain.mixing_time(0.25, 1 << 22).unwrap();
            (s.relaxation_time, mix as f64)
        };
        let (rel8, mix8) = t(8);
        let (rel16, mix16) = t(16);
        let rel_ratio = rel16 / rel8;
        let mix_ratio = mix16 / mix8;
        assert!(
            (rel_ratio / mix_ratio - 1.0).abs() < 0.5,
            "relaxation ratio {rel_ratio} vs mixing ratio {mix_ratio}"
        );
    }

    #[test]
    fn non_reversible_rejected() {
        // A biased 3-cycle is irreducible + aperiodic but not reversible.
        let chain = DenseChain::from_rows(vec![
            vec![0.1, 0.8, 0.1],
            vec![0.1, 0.1, 0.8],
            vec![0.8, 0.1, 0.1],
        ])
        .unwrap();
        assert!(chain.is_ergodic());
        assert!(matches!(
            spectrum(&chain, 1e-9, 100_000),
            Err(MarkovError::InvalidDistribution { .. })
        ));
    }

    #[test]
    fn non_ergodic_rejected() {
        let chain = DenseChain::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            spectrum(&chain, 1e-9, 1000),
            Err(MarkovError::NotErgodic)
        ));
    }

    #[test]
    fn reversibility_checker() {
        let c = TwoStateChain::new(0.2, 0.4).unwrap().to_dense();
        let pi = c.stationary(1e-13, 100_000).unwrap();
        assert!(is_reversible(&c, &pi, 1e-8));
        let biased = DenseChain::from_rows(vec![
            vec![0.1, 0.8, 0.1],
            vec![0.1, 0.1, 0.8],
            vec![0.8, 0.1, 0.1],
        ])
        .unwrap();
        let pi2 = biased.stationary(1e-13, 100_000).unwrap();
        assert!(!is_reversible(&biased, &pi2, 1e-8));
    }
}
