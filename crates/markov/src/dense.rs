//! Dense row-stochastic transition matrices.

use rand::Rng;

use crate::{MarkovError, ProbDist};

/// Tolerance for "row sums to one" validation.
const ROW_TOL: f64 = 1e-9;

/// A finite Markov chain given by a dense row-stochastic matrix.
///
/// Row `i` holds the distribution of the next state conditioned on the
/// current state `i`. Suitable for the "small hidden chain" analyses of the
/// paper (node chains of random-path models, edge chains of edge-MEGs);
/// large implicit chains (e.g. the discretised waypoint) are simulated
/// directly instead.
///
/// # Examples
///
/// ```
/// use dg_markov::DenseChain;
///
/// // A lazy two-state chain.
/// let chain = DenseChain::from_rows(vec![
///     vec![0.9, 0.1],
///     vec![0.2, 0.8],
/// ]).unwrap();
/// let pi = chain.stationary(1e-12, 10_000).unwrap();
/// assert!((pi.prob(1) - 1.0 / 3.0).abs() < 1e-9);
/// let tmix = chain.mixing_time(0.01, 1 << 20).unwrap();
/// assert!(tmix > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DenseChain {
    k: usize,
    /// Row-major `k × k` transition probabilities.
    rows: Vec<f64>,
}

impl DenseChain {
    /// Validates and wraps a transition matrix given as rows.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if any row has the wrong
    /// length, or [`MarkovError::InvalidRow`] if a row has negative or
    /// non-finite entries or does not sum to 1 within `1e-9`.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, MarkovError> {
        let k = rows.len();
        if k == 0 {
            return Err(MarkovError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        let mut flat = Vec::with_capacity(k * k);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != k {
                return Err(MarkovError::DimensionMismatch {
                    expected: k,
                    found: row.len(),
                });
            }
            if row.iter().any(|&p| !p.is_finite() || p < 0.0) {
                return Err(MarkovError::InvalidRow {
                    row: i,
                    sum: f64::NAN,
                });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > ROW_TOL {
                return Err(MarkovError::InvalidRow { row: i, sum });
            }
            flat.extend_from_slice(row);
        }
        Ok(DenseChain { k, rows: flat })
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.k
    }

    /// Transition probability `P(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn transition(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.k && j < self.k, "state out of range");
        self.rows[i * self.k + j]
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.k, "state out of range");
        &self.rows[i * self.k..(i + 1) * self.k]
    }

    /// One step of the distribution dynamics: `next = dist · P`.
    ///
    /// # Panics
    ///
    /// Panics if the distribution size differs from the state count.
    pub fn next_dist(&self, dist: &ProbDist) -> ProbDist {
        assert_eq!(dist.len(), self.k, "distribution size mismatch");
        let mut out = vec![0.0; self.k];
        for (i, &pi) in dist.as_slice().iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &pij) in out.iter_mut().zip(row.iter()) {
                *o += pi * pij;
            }
        }
        ProbDist::new(out).expect("stochastic matrix preserves distributions")
    }

    /// Evolves a distribution `t` steps.
    pub fn evolve(&self, dist: &ProbDist, t: usize) -> ProbDist {
        let mut d = dist.clone();
        for _ in 0..t {
            d = self.next_dist(&d);
        }
        d
    }

    /// Samples the next state from state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample_next<R: Rng + ?Sized>(&self, i: usize, rng: &mut R) -> usize {
        let row = self.row(i);
        let mut u: f64 = rng.gen();
        for (j, &p) in row.iter().enumerate() {
            if u < p {
                return j;
            }
            u -= p;
        }
        self.k - 1
    }

    /// `true` if every state can reach every other along positive-probability
    /// transitions (strong connectivity of the support digraph).
    pub fn is_irreducible(&self) -> bool {
        self.reaches_all(false) && self.reaches_all(true)
    }

    // Index loops mirror the matrix math; iterators would obscure it.
    #[allow(clippy::needless_range_loop)]
    fn reaches_all(&self, reversed: bool) -> bool {
        let mut seen = vec![false; self.k];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for v in 0..self.k {
                let p = if reversed {
                    self.rows[v * self.k + u]
                } else {
                    self.rows[u * self.k + v]
                };
                if p > 0.0 && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.k
    }

    /// The period of the chain (gcd of support-digraph cycle lengths through
    /// state 0); `1` means aperiodic. Assumes irreducibility.
    pub fn period(&self) -> usize {
        // BFS levels from state 0; for every support edge (u, v),
        // gcd-accumulate |level(u) + 1 - level(v)|.
        let mut level = vec![usize::MAX; self.k];
        level[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for v in 0..self.k {
                if self.rows[u * self.k + v] > 0.0 && level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        let mut g = 0usize;
        for u in 0..self.k {
            if level[u] == usize::MAX {
                continue;
            }
            for v in 0..self.k {
                if self.rows[u * self.k + v] > 0.0 && level[v] != usize::MAX {
                    let diff = (level[u] + 1).abs_diff(level[v]);
                    g = gcd(g, diff);
                }
            }
        }
        if g == 0 {
            1
        } else {
            g
        }
    }

    /// `true` if the chain is ergodic (irreducible and aperiodic).
    pub fn is_ergodic(&self) -> bool {
        self.is_irreducible() && self.period() == 1
    }

    /// The unique stationary distribution, by power iteration on the lazy
    /// chain `(I + P)/2` (same fixed point, guaranteed aperiodic).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotErgodic`] if the chain is not irreducible,
    /// or [`MarkovError::NoConvergence`] if `max_iterations` is exhausted
    /// before successive iterates are within `tol` in TV distance.
    pub fn stationary(&self, tol: f64, max_iterations: usize) -> Result<ProbDist, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::NotErgodic);
        }
        let mut d = ProbDist::uniform(self.k);
        for _ in 0..max_iterations {
            let stepped = self.next_dist(&d);
            // Lazy step: (d + d·P) / 2.
            let lazy: Vec<f64> = d
                .as_slice()
                .iter()
                .zip(stepped.as_slice())
                .map(|(a, b)| 0.5 * (a + b))
                .collect();
            let next = ProbDist::new(lazy).expect("convex combination is a distribution");
            let delta = next.tv_distance(&d);
            d = next;
            if delta <= tol {
                // Polish: the fixed point of the lazy chain is the fixed
                // point of P itself.
                return Ok(d);
            }
        }
        Err(MarkovError::NoConvergence { max_iterations })
    }

    /// Exact worst-case-start mixing time
    /// `t_mix(ε) = min { t : max_x TV(P^t(x,·), π) ≤ ε }`.
    ///
    /// Computed with repeated squaring (`O(k³ log t)`), exploiting that the
    /// worst-case TV distance is non-increasing in `t` for ergodic chains.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotErgodic`] for non-ergodic chains, or
    /// [`MarkovError::NoConvergence`] if the distance has not dropped below
    /// `eps` by `max_t` steps.
    pub fn mixing_time(&self, eps: f64, max_t: usize) -> Result<usize, MarkovError> {
        if !self.is_ergodic() {
            return Err(MarkovError::NotErgodic);
        }
        let pi = self.stationary(1e-13, 1_000_000)?;
        if self.worst_tv(&self.identity_matrix(), &pi) <= eps {
            return Ok(0);
        }
        // Doubling phase: cache P^(2^j) until the distance drops below eps.
        let mut powers = vec![self.rows.clone()]; // P^(2^0)
        let mut current = self.rows.clone();
        let mut t = 1usize;
        while self.worst_tv(&current, &pi) > eps {
            if t >= max_t {
                return Err(MarkovError::NoConvergence {
                    max_iterations: max_t,
                });
            }
            current = self.mat_mul(&current, &current);
            t *= 2;
            powers.push(current.clone());
        }
        // Binary search in (t/2, t] using the cached powers.
        let mut lo = t / 2; // worst_tv at lo is known > eps
        let mut hi = t;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let m = self.power_from_cache(&powers, mid);
            if self.worst_tv(&m, &pi) <= eps {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    fn identity_matrix(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.k * self.k];
        for i in 0..self.k {
            m[i * self.k + i] = 1.0;
        }
        m
    }

    /// Assembles `P^t` from cached binary powers.
    fn power_from_cache(&self, powers: &[Vec<f64>], t: usize) -> Vec<f64> {
        let mut acc = self.identity_matrix();
        let mut bit = 0;
        let mut rest = t;
        while rest > 0 {
            if rest & 1 == 1 {
                acc = self.mat_mul(&acc, &powers[bit]);
            }
            rest >>= 1;
            bit += 1;
        }
        acc
    }

    /// `max_x TV(M(x,·), π)` for a `k × k` row-stochastic matrix `M`.
    fn worst_tv(&self, m: &[f64], pi: &ProbDist) -> f64 {
        let mut worst: f64 = 0.0;
        for x in 0..self.k {
            let row = &m[x * self.k..(x + 1) * self.k];
            let tv = 0.5
                * row
                    .iter()
                    .zip(pi.as_slice())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>();
            worst = worst.max(tv);
        }
        worst
    }

    fn mat_mul(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let k = self.k;
        let mut c = vec![0.0; k * k];
        for i in 0..k {
            for l in 0..k {
                let ail = a[i * k + l];
                if ail == 0.0 {
                    continue;
                }
                let brow = &b[l * k..(l + 1) * k];
                let crow = &mut c[i * k..(i + 1) * k];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += ail * bv;
                }
            }
        }
        c
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lazy_cycle(k: usize) -> DenseChain {
        // Lazy random walk on a k-cycle: stay 1/2, move 1/4 each way.
        let mut rows = vec![vec![0.0; k]; k];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 0.5;
            row[(i + 1) % k] += 0.25;
            row[(i + k - 1) % k] += 0.25;
        }
        DenseChain::from_rows(rows).unwrap()
    }

    #[test]
    fn validation_rejects_bad_rows() {
        assert!(DenseChain::from_rows(vec![]).is_err());
        assert!(DenseChain::from_rows(vec![vec![0.5, 0.4]]).is_err());
        assert!(DenseChain::from_rows(vec![vec![1.0, 0.0], vec![0.5]]).is_err());
        assert!(DenseChain::from_rows(vec![vec![-0.5, 1.5], vec![0.5, 0.5]]).is_err());
    }

    #[test]
    fn stationary_of_lazy_cycle_is_uniform() {
        let c = lazy_cycle(8);
        let pi = c.stationary(1e-12, 100_000).unwrap();
        for &p in pi.as_slice() {
            assert!((p - 0.125).abs() < 1e-8, "p = {p}");
        }
    }

    #[test]
    fn stationary_asymmetric_two_state() {
        let c = DenseChain::from_rows(vec![vec![0.7, 0.3], vec![0.1, 0.9]]).unwrap();
        let pi = c.stationary(1e-13, 100_000).unwrap();
        // pi = (q/(p+q), p/(p+q)) with p=0.3, q=0.1.
        assert!((pi.prob(0) - 0.25).abs() < 1e-9);
        assert!((pi.prob(1) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let c = lazy_cycle(5);
        let pi = c.stationary(1e-13, 100_000).unwrap();
        let stepped = c.next_dist(&pi);
        assert!(pi.tv_distance(&stepped) < 1e-9);
    }

    #[test]
    fn reducible_chain_rejected() {
        let c = DenseChain::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(!c.is_irreducible());
        assert_eq!(c.stationary(1e-9, 1000), Err(MarkovError::NotErgodic));
        assert_eq!(c.mixing_time(0.01, 100), Err(MarkovError::NotErgodic));
    }

    #[test]
    fn periodicity_detected() {
        // Deterministic 2-cycle has period 2.
        let c = DenseChain::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(c.is_irreducible());
        assert_eq!(c.period(), 2);
        assert!(!c.is_ergodic());
        // Lazy version is aperiodic.
        let lazy = DenseChain::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert_eq!(lazy.period(), 1);
        assert!(lazy.is_ergodic());
    }

    #[test]
    fn evolve_point_mass() {
        let c = DenseChain::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let d0 = ProbDist::point(2, 0);
        let d1 = c.evolve(&d0, 1);
        assert_eq!(d1.prob(1), 1.0);
        let d2 = c.evolve(&d0, 2);
        assert_eq!(d2.prob(0), 1.0);
    }

    #[test]
    fn mixing_time_monotone_in_eps() {
        let c = lazy_cycle(8);
        let loose = c.mixing_time(0.25, 1 << 20).unwrap();
        let tight = c.mixing_time(0.01, 1 << 20).unwrap();
        assert!(tight >= loose, "tight {tight} < loose {loose}");
        assert!(loose >= 1);
    }

    #[test]
    fn mixing_time_grows_with_cycle_length() {
        let t8 = lazy_cycle(8).mixing_time(0.05, 1 << 22).unwrap();
        let t16 = lazy_cycle(16).mixing_time(0.05, 1 << 22).unwrap();
        // Mixing of a lazy cycle scales like k²; 16 vs 8 should be ≈ 4x.
        let ratio = t16 as f64 / t8 as f64;
        assert!(ratio > 2.0, "ratio = {ratio}");
    }

    #[test]
    fn mixing_time_definition_holds() {
        // TV at t_mix <= eps and TV at t_mix - 1 > eps.
        let c = lazy_cycle(6);
        let eps = 0.05;
        let t = c.mixing_time(eps, 1 << 20).unwrap();
        let pi = c.stationary(1e-13, 1_000_000).unwrap();
        let worst_at = |steps: usize| -> f64 {
            (0..c.state_count())
                .map(|x| {
                    c.evolve(&ProbDist::point(c.state_count(), x), steps)
                        .tv_distance(&pi)
                })
                .fold(0.0, f64::max)
        };
        assert!(worst_at(t) <= eps + 1e-9);
        assert!(worst_at(t - 1) > eps);
    }

    #[test]
    fn sample_next_respects_row() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let c = DenseChain::from_rows(vec![vec![0.2, 0.8], vec![1.0, 0.0]]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ones = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if c.sample_next(0, &mut rng) == 1 {
                ones += 1;
            }
        }
        let freq = ones as f64 / trials as f64;
        assert!((freq - 0.8).abs() < 0.02, "freq = {freq}");
        assert_eq!(c.sample_next(1, &mut rng), 0);
    }
}
