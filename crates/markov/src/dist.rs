//! Validated probability distributions over `0..k`.

use rand::Rng;

use crate::MarkovError;

/// Tolerance for "sums to one" validation.
const SUM_TOL: f64 = 1e-9;

/// A probability distribution over states `0..k`, validated at
/// construction.
///
/// # Examples
///
/// ```
/// use dg_markov::ProbDist;
///
/// let p = ProbDist::new(vec![0.25, 0.75]).unwrap();
/// let q = ProbDist::uniform(2);
/// assert!((p.tv_distance(&q) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProbDist {
    probs: Vec<f64>,
}

impl ProbDist {
    /// Validates and wraps a probability vector.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] if the vector is empty,
    /// has negative/non-finite entries, or does not sum to 1 within
    /// tolerance `1e-9`.
    pub fn new(probs: Vec<f64>) -> Result<Self, MarkovError> {
        if probs.is_empty() || probs.iter().any(|&p| !p.is_finite() || p < 0.0) {
            return Err(MarkovError::InvalidDistribution { sum: f64::NAN });
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > SUM_TOL {
            return Err(MarkovError::InvalidDistribution { sum });
        }
        Ok(ProbDist { probs })
    }

    /// The uniform distribution over `k` states.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "need at least one state");
        ProbDist {
            probs: vec![1.0 / k as f64; k],
        }
    }

    /// The point mass at `state` among `k` states.
    ///
    /// # Panics
    ///
    /// Panics if `state >= k`.
    pub fn point(k: usize, state: usize) -> Self {
        assert!(state < k, "state out of range");
        let mut probs = vec![0.0; k];
        probs[state] = 1.0;
        ProbDist { probs }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` if there are no states (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The raw probabilities.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn prob(&self, state: usize) -> f64 {
        self.probs[state]
    }

    /// Total-variation distance `½ Σ |p_i − q_i|`.
    ///
    /// # Panics
    ///
    /// Panics if the supports have different sizes.
    pub fn tv_distance(&self, other: &ProbDist) -> f64 {
        assert_eq!(self.len(), other.len(), "distributions must match in size");
        0.5 * self
            .probs
            .iter()
            .zip(other.probs.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// Samples a state by inverse-CDF (linear scan; use
    /// [`crate::samplers`] for repeated sampling).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (i, &p) in self.probs.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        self.probs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(ProbDist::new(vec![]).is_err());
        assert!(ProbDist::new(vec![0.5, 0.6]).is_err());
        assert!(ProbDist::new(vec![-0.1, 1.1]).is_err());
        assert!(ProbDist::new(vec![f64::NAN, 1.0]).is_err());
        assert!(ProbDist::new(vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn uniform_and_point() {
        let u = ProbDist::uniform(4);
        assert_eq!(u.prob(2), 0.25);
        let p = ProbDist::point(4, 1);
        assert_eq!(p.prob(1), 1.0);
        assert_eq!(p.prob(0), 0.0);
        assert!((u.tv_distance(&p) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tv_properties() {
        let a = ProbDist::new(vec![0.2, 0.8]).unwrap();
        let b = ProbDist::new(vec![0.7, 0.3]).unwrap();
        assert_eq!(a.tv_distance(&a), 0.0);
        assert!((a.tv_distance(&b) - b.tv_distance(&a)).abs() < 1e-15);
        assert!((a.tv_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequencies() {
        let d = ProbDist::new(vec![0.1, 0.6, 0.3]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let trials = 30_000;
        for _ in 0..trials {
            counts[d.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - d.prob(i)).abs() < 0.02,
                "state {i}: freq {freq} vs prob {}",
                d.prob(i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must match in size")]
    fn tv_mismatched_sizes_panics() {
        let a = ProbDist::uniform(2);
        let b = ProbDist::uniform(3);
        let _ = a.tv_distance(&b);
    }
}
