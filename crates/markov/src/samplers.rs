//! Repeated-use categorical samplers.
//!
//! [`CategoricalSampler`] is a CDF binary-search sampler (`O(log k)` per
//! draw); [`AliasSampler`] is Walker's alias method (`O(1)` per draw, used
//! in the hot loops of node-MEG simulation).

use rand::Rng;

use crate::{MarkovError, ProbDist};

/// Inverse-CDF sampler over `0..k` (`O(log k)` per sample).
///
/// # Examples
///
/// ```
/// use dg_markov::{ProbDist, samplers::CategoricalSampler};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let d = ProbDist::new(vec![0.5, 0.5]).unwrap();
/// let s = CategoricalSampler::new(&d);
/// let mut rng = SmallRng::seed_from_u64(0);
/// let x = s.sample(&mut rng);
/// assert!(x < 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalSampler {
    cdf: Vec<f64>,
}

impl CategoricalSampler {
    /// Precomputes the CDF of `dist`.
    pub fn new(dist: &ProbDist) -> Self {
        let mut cdf = Vec::with_capacity(dist.len());
        let mut acc = 0.0;
        for &p in dist.as_slice() {
            acc += p;
            cdf.push(acc);
        }
        // Guard against floating-point undershoot at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        CategoricalSampler { cdf }
    }

    /// Builds directly from unnormalized non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] if weights are empty,
    /// negative, non-finite, or all zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self, MarkovError> {
        if weights.is_empty() || weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(MarkovError::InvalidDistribution { sum: f64::NAN });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(MarkovError::InvalidDistribution { sum: total });
        }
        let dist = ProbDist::new(weights.iter().map(|w| w / total).collect())?;
        Ok(Self::new(&dist))
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one category.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Walker's alias method: `O(k)` setup, `O(1)` per sample.
///
/// # Examples
///
/// ```
/// use dg_markov::{ProbDist, samplers::AliasSampler};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let d = ProbDist::new(vec![0.1, 0.2, 0.7]).unwrap();
/// let s = AliasSampler::new(&d);
/// let mut rng = SmallRng::seed_from_u64(0);
/// assert!(s.sample(&mut rng) < 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasSampler {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Builds the alias table for `dist`.
    pub fn new(dist: &ProbDist) -> Self {
        let k = dist.len();
        let mut prob = vec![0.0; k];
        let mut alias = vec![0u32; k];
        let mut scaled: Vec<f64> = dist.as_slice().iter().map(|p| p * k as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i as u32;
        }
        AliasSampler { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_frequencies(sample: impl Fn(&mut SmallRng) -> usize, probs: &[f64], tol: f64) {
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 60_000;
        let mut counts = vec![0usize; probs.len()];
        for _ in 0..trials {
            counts[sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - probs[i]).abs() < tol,
                "category {i}: freq {freq} vs prob {}",
                probs[i]
            );
        }
    }

    #[test]
    fn categorical_frequencies() {
        let probs = vec![0.05, 0.2, 0.45, 0.3];
        let d = ProbDist::new(probs.clone()).unwrap();
        let s = CategoricalSampler::new(&d);
        check_frequencies(|rng| s.sample(rng), &probs, 0.01);
    }

    #[test]
    fn alias_frequencies() {
        let probs = vec![0.6, 0.1, 0.1, 0.1, 0.1];
        let d = ProbDist::new(probs.clone()).unwrap();
        let s = AliasSampler::new(&d);
        check_frequencies(|rng| s.sample(rng), &probs, 0.01);
    }

    #[test]
    fn point_mass_always_same() {
        let d = ProbDist::point(5, 3);
        let c = CategoricalSampler::new(&d);
        let a = AliasSampler::new(&d);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(c.sample(&mut rng), 3);
            assert_eq!(a.sample(&mut rng), 3);
        }
    }

    #[test]
    fn from_weights_normalizes() {
        let s = CategoricalSampler::from_weights(&[2.0, 2.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(CategoricalSampler::from_weights(&[]).is_err());
        assert!(CategoricalSampler::from_weights(&[0.0, 0.0]).is_err());
        assert!(CategoricalSampler::from_weights(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn uniform_alias_covers_all() {
        let d = ProbDist::uniform(7);
        let s = AliasSampler::new(&d);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
