//! Property tests for the Markov substrate: distribution dynamics, TV
//! contraction, stationary fixed points, sampler correctness.

use proptest::prelude::*;

use dg_markov::{DenseChain, ProbDist, TwoStateChain};

/// Strategy: a random row-stochastic matrix with strictly positive
/// entries (hence ergodic).
fn positive_chain(k: usize) -> impl Strategy<Value = DenseChain> {
    prop::collection::vec(prop::collection::vec(0.05f64..1.0, k), k).prop_map(|rows| {
        let rows = rows
            .into_iter()
            .map(|row| {
                let sum: f64 = row.iter().sum();
                row.into_iter().map(|x| x / sum).collect::<Vec<_>>()
            })
            .collect();
        DenseChain::from_rows(rows).expect("normalized rows are stochastic")
    })
}

fn dist(k: usize) -> impl Strategy<Value = ProbDist> {
    prop::collection::vec(0.01f64..1.0, k).prop_map(|w| {
        let sum: f64 = w.iter().sum();
        ProbDist::new(w.into_iter().map(|x| x / sum).collect()).expect("normalized")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn evolution_preserves_distributions(chain in positive_chain(4), d in dist(4)) {
        let next = chain.next_dist(&d);
        let sum: f64 = next.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(next.as_slice().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn tv_contracts_under_evolution(chain in positive_chain(4), a in dist(4), b in dist(4)) {
        // For any Markov kernel, TV(aP, bP) <= TV(a, b).
        let before = a.tv_distance(&b);
        let after = chain.next_dist(&a).tv_distance(&chain.next_dist(&b));
        prop_assert!(after <= before + 1e-12, "after {after} > before {before}");
    }

    #[test]
    fn stationary_is_fixed_point(chain in positive_chain(5)) {
        let pi = chain.stationary(1e-12, 1_000_000).unwrap();
        let next = chain.next_dist(&pi);
        prop_assert!(pi.tv_distance(&next) < 1e-7);
    }

    #[test]
    fn positive_chains_are_ergodic(chain in positive_chain(3)) {
        prop_assert!(chain.is_irreducible());
        prop_assert_eq!(chain.period(), 1);
        prop_assert!(chain.is_ergodic());
    }

    #[test]
    fn mixing_time_definition(chain in positive_chain(3)) {
        let eps = 0.05;
        let t = chain.mixing_time(eps, 1 << 20).unwrap();
        let pi = chain.stationary(1e-13, 1_000_000).unwrap();
        let worst = |steps: usize| -> f64 {
            (0..3)
                .map(|x| chain.evolve(&ProbDist::point(3, x), steps).tv_distance(&pi))
                .fold(0.0, f64::max)
        };
        prop_assert!(worst(t) <= eps + 1e-9);
        if t > 0 {
            prop_assert!(worst(t - 1) > eps);
        }
    }

    #[test]
    fn tv_is_a_metric(a in dist(5), b in dist(5), c in dist(5)) {
        prop_assert!(a.tv_distance(&a) < 1e-15);
        prop_assert!((a.tv_distance(&b) - b.tv_distance(&a)).abs() < 1e-15);
        prop_assert!(a.tv_distance(&b) <= a.tv_distance(&c) + c.tv_distance(&b) + 1e-12);
        prop_assert!(a.tv_distance(&b) <= 1.0);
    }

    #[test]
    fn two_state_closed_forms(p in 0.01f64..0.99, q in 0.01f64..0.99) {
        let c = TwoStateChain::new(p, q).unwrap();
        let pi = c.to_dense().stationary(1e-13, 1_000_000).unwrap();
        prop_assert!((pi.prob(1) - c.stationary_on()).abs() < 1e-8);
        // Closed-form worst TV matches the dense evolution.
        let d = c.to_dense();
        let worst_dense = (0..2)
            .map(|x| d.evolve(&ProbDist::point(2, x), 3).tv_distance(&pi))
            .fold(0.0, f64::max);
        prop_assert!((worst_dense - c.worst_tv_at(3)).abs() < 1e-8);
    }

    #[test]
    fn samplers_agree_with_distribution(d in dist(6), seed in any::<u64>()) {
        use dg_markov::samplers::{AliasSampler, CategoricalSampler};
        use rand::{rngs::SmallRng, SeedableRng};
        let cat = CategoricalSampler::new(&d);
        let alias = AliasSampler::new(&d);
        let mut rng = SmallRng::seed_from_u64(seed);
        let trials = 4000;
        let mut counts = [0usize; 2 * 6];
        for _ in 0..trials {
            counts[cat.sample(&mut rng)] += 1;
            counts[6 + alias.sample(&mut rng)] += 1;
        }
        for i in 0..6 {
            let fc = counts[i] as f64 / trials as f64;
            let fa = counts[6 + i] as f64 / trials as f64;
            prop_assert!((fc - d.prob(i)).abs() < 0.06);
            prop_assert!((fa - d.prob(i)).abs() < 0.06);
        }
    }
}
