//! Fault plans: which sites fail, how often, and from which seed.
//!
//! A plan is a seed plus a list of rules, one per injection site. The
//! textual form (the `DG_FAULT` environment variable) is
//!
//! ```text
//! seed=7;sweep.trial.panic:1x3;store.write.err:0.25
//! ```
//!
//! — semicolon-separated segments, where `seed=N` sets the draw seed
//! (default 0) and every other segment is `site:prob` or
//! `site:probxN` (`prob` in `[0, 1]`; `xN` caps the rule at `N`
//! injected faults, after which the site never fires again). The
//! [`std::fmt::Display`] form round-trips through [`FaultPlan::parse`].

use std::fmt;

/// One site's injection rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The injection-site name this rule arms (`sweep.trial.panic`, ...).
    pub site: String,
    /// Probability each evaluation of the site fires, in `[0, 1]`.
    pub prob: f64,
    /// Cap on *injected* faults (not evaluations); `None` is unbounded.
    pub max_hits: Option<u64>,
}

/// A seeded set of [`FaultRule`]s — everything [`crate::should_fail`]
/// needs to make deterministic decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`. Add rules with
    /// [`FaultPlan::rule`] or [`FaultPlan::always`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule: `site` fires with probability `prob` per
    /// evaluation, at most `max_hits` injected faults total (`None` for
    /// unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `site` is empty or contains characters outside
    /// `[A-Za-z0-9._-]`, or if `prob` is not in `[0, 1]`.
    pub fn rule(mut self, site: impl Into<String>, prob: f64, max_hits: Option<u64>) -> FaultPlan {
        let site = site.into();
        assert!(valid_site(&site), "bad fault site name {site:?}");
        assert!(
            (0.0..=1.0).contains(&prob),
            "fault probability {prob} outside [0, 1]"
        );
        self.rules.push(FaultRule {
            site,
            prob,
            max_hits,
        });
        self
    }

    /// A deterministic rule: the first `hits` evaluations of `site`
    /// fire, every later one passes — the shape chaos tests want.
    pub fn always(self, site: impl Into<String>, hits: u64) -> FaultPlan {
        self.rule(site, 1.0, Some(hits))
    }

    /// The plan's draw seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rules, in declaration order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Parses the `DG_FAULT` textual form (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending segment.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for segment in s.split(';') {
            let segment = segment.trim();
            if segment.is_empty() {
                continue;
            }
            if let Some(seed) = segment.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad seed in fault plan segment {segment:?}: {e}"))?;
                continue;
            }
            let Some((site, spec)) = segment.split_once(':') else {
                return Err(format!(
                    "fault plan segment {segment:?} is neither seed=N nor site:prob[xN]"
                ));
            };
            let site = site.trim();
            if !valid_site(site) {
                return Err(format!("bad fault site name {site:?}"));
            }
            let spec = spec.trim();
            let (prob_str, max_hits) = match spec.split_once('x') {
                Some((p, n)) => {
                    let n: u64 = n
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad hit cap in segment {segment:?}: {e}"))?;
                    (p.trim(), Some(n))
                }
                None => (spec, None),
            };
            let prob: f64 = prob_str
                .parse()
                .map_err(|e| format!("bad probability in segment {segment:?}: {e}"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!(
                    "probability {prob} in segment {segment:?} outside [0, 1]"
                ));
            }
            plan.rules.push(FaultRule {
                site: site.to_string(),
                prob,
                max_hits,
            });
        }
        Ok(plan)
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        FaultPlan::parse(s)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ";{}:{}", rule.site, rule.prob)?;
            if let Some(n) = rule.max_hits {
                write!(f, "x{n}")?;
            }
        }
        Ok(())
    }
}

fn valid_site(site: &str) -> bool {
    !site.is_empty()
        && site
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let plan =
            FaultPlan::new(7)
                .always("sweep.trial.panic", 3)
                .rule("store.write.err", 0.25, None);
        let text = plan.to_string();
        assert_eq!(text, "seed=7;sweep.trial.panic:1x3;store.write.err:0.25");
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn parse_tolerates_whitespace_and_empty_segments() {
        let plan = FaultPlan::parse(" seed=3 ; ; a.b : 0.5 x 2 ;").unwrap();
        assert_eq!(plan.seed(), 3);
        assert_eq!(
            plan.rules(),
            &[FaultRule {
                site: "a.b".to_string(),
                prob: 0.5,
                max_hits: Some(2),
            }]
        );
    }

    #[test]
    fn parse_rejects_malformed_segments() {
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("no-colon-here").is_err());
        assert!(FaultPlan::parse("site with space:1").is_err());
        assert!(FaultPlan::parse("a.b:1.5").is_err());
        assert!(FaultPlan::parse("a.b:0.5xq").is_err());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn builder_rejects_bad_probability() {
        let _ = FaultPlan::new(0).rule("a.b", 2.0, None);
    }
}
