//! `dg-fault` — deterministic, seeded fault injection for the dynspread
//! workspace.
//!
//! The execution plane (sweep scheduler, artifact store, query daemon)
//! claims to survive trial panics, transient I/O errors, and worker
//! crashes. This crate makes those claims testable: named *injection
//! sites* threaded through the stack fire on demand, driven by a
//! seeded [`FaultPlan`], so a chaos test can make exactly the third
//! checkpoint write fail — every run, on every machine — and then pin
//! the recovered artifact byte-identical to a fault-free run.
//!
//! The canonical sites:
//!
//! | site                  | effect when fired                          |
//! |-----------------------|--------------------------------------------|
//! | `sweep.trial.panic`   | panics inside the sweep trial function     |
//! | `store.write.err`     | artifact/checkpoint write fails (transient)|
//! | `store.read.err`      | artifact/checkpoint read fails (transient) |
//! | `daemon.worker.crash` | daemon worker panics at job start          |
//! | `http.conn.stall`     | connection handler stalls before reading   |
//!
//! # Double gating
//!
//! Like `dg-obs`, injection is gated twice:
//!
//! * **Compile time** — without the `enabled` cargo feature (on by
//!   default) every hook is an empty `#[inline]` body and
//!   [`should_fail`] is a constant `false`.
//! * **Run time** — even when compiled in, no site fires until a plan
//!   is armed via the `DG_FAULT` environment variable (parsed lazily on
//!   first evaluation) or [`set_plan`]/[`scoped`]. An unarmed site
//!   costs one relaxed atomic load.
//!
//! # Determinism
//!
//! Each rule keeps a per-site evaluation counter `k`; evaluation `k`
//! of site `s` fires iff `splitmix64(seed ^ fnv1a(s), k)` falls under
//! the rule's probability. Same plan, same sequence of evaluations →
//! same faults, regardless of wall clock or machine. (Under a parallel
//! scheduler the *assignment* of faults to threads can vary; the
//! layers above are required to recover to byte-identical artifacts
//! either way, which is exactly what the chaos suites pin.)
//!
//! # Example
//!
//! ```
//! use dg_fault::FaultPlan;
//!
//! // Nothing fires until a plan is armed.
//! assert!(!dg_fault::should_fail("store.write.err"));
//! let _guard = dg_fault::scoped(FaultPlan::new(1).always("store.write.err", 2));
//! // The first two evaluations fire, every later one passes.
//! assert!(dg_fault::io_check("store.write.err").is_err());
//! assert!(dg_fault::io_check("store.write.err").is_err());
//! assert!(dg_fault::io_check("store.write.err").is_ok());
//! // Other sites are untouched.
//! assert!(!dg_fault::should_fail("sweep.trial.panic"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;

pub use plan::{FaultPlan, FaultRule};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[cfg(feature = "enabled")]
use std::sync::atomic::AtomicU8;
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};

/// Process-wide count of injected faults, independent of `dg-obs`
/// runtime gating — the cheap assertion handle for chaos tests and the
/// t21 bench guard.
static INJECTED: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "enabled")]
static STATUS: AtomicU8 = AtomicU8::new(UNSET);
#[cfg(feature = "enabled")]
const UNSET: u8 = 0;
#[cfg(feature = "enabled")]
const OFF: u8 = 1;
#[cfg(feature = "enabled")]
const ON: u8 = 2;

#[cfg(feature = "enabled")]
static PLAN: Mutex<Option<Arc<ActivePlan>>> = Mutex::new(None);

#[cfg(feature = "enabled")]
struct ActiveRule {
    site: String,
    prob: f64,
    max_hits: Option<u64>,
    /// Evaluations of this site so far — the deterministic draw index.
    evals: AtomicU64,
    /// Faults actually injected, bounded by `max_hits`.
    hits: AtomicU64,
}

#[cfg(feature = "enabled")]
struct ActivePlan {
    seed: u64,
    rules: Vec<ActiveRule>,
}

#[cfg(feature = "enabled")]
impl ActivePlan {
    fn of(plan: &FaultPlan) -> ActivePlan {
        ActivePlan {
            seed: plan.seed(),
            rules: plan
                .rules()
                .iter()
                .map(|r| ActiveRule {
                    site: r.site.clone(),
                    prob: r.prob,
                    max_hits: r.max_hits,
                    evals: AtomicU64::new(0),
                    hits: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

/// Whether a fault plan is currently armed. Always `false` without the
/// `enabled` cargo feature. The fast path is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        match STATUS.load(Ordering::Relaxed) {
            ON => true,
            OFF => false,
            _ => init_from_env(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// Arms `plan` for the whole process (replacing any current plan; rule
/// counters start at zero), or disarms injection with `None`.
/// Overrides whatever `DG_FAULT` said. A no-op without the `enabled`
/// cargo feature.
pub fn set_plan(plan: Option<FaultPlan>) {
    #[cfg(feature = "enabled")]
    {
        let active = plan.as_ref().map(|p| Arc::new(ActivePlan::of(p)));
        let armed = active.is_some();
        *lock_plan() = active;
        STATUS.store(if armed { ON } else { OFF }, Ordering::Relaxed);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = plan;
}

/// Arms `plan` until the returned guard drops, which disarms injection
/// entirely (guards do not nest: the previous plan is not restored).
/// Chaos tests hold one of these for the faulty region of each test.
#[must_use = "the plan is disarmed when the guard drops"]
pub fn scoped(plan: FaultPlan) -> ScopedPlan {
    set_plan(Some(plan));
    ScopedPlan { _private: () }
}

/// Guard returned by [`scoped`]; disarms fault injection on drop.
#[derive(Debug)]
pub struct ScopedPlan {
    _private: (),
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        set_plan(None);
    }
}

#[cfg(feature = "enabled")]
fn lock_plan() -> std::sync::MutexGuard<'static, Option<Arc<ActivePlan>>> {
    PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(feature = "enabled")]
#[cold]
fn init_from_env() -> bool {
    match std::env::var("DG_FAULT") {
        Ok(text) if !text.trim().is_empty() => match FaultPlan::parse(&text) {
            Ok(plan) => {
                // Racing initialisers agree: same env, same plan. The
                // second writer replaces an identical plan whose
                // counters are still (or almost still) zero.
                set_plan(Some(plan));
                true
            }
            Err(msg) => {
                dg_obs::dg_error!("dg-fault: ignoring unparseable DG_FAULT: {msg}");
                STATUS.store(OFF, Ordering::Relaxed);
                false
            }
        },
        _ => {
            STATUS.store(OFF, Ordering::Relaxed);
            false
        }
    }
}

/// Evaluates the injection site `site` against the armed plan: `true`
/// means the caller must fail now (the decision is already recorded).
/// Deterministic per plan and evaluation order; constant `false` when
/// nothing is armed.
#[inline]
pub fn should_fail(site: &str) -> bool {
    #[cfg(feature = "enabled")]
    {
        if !enabled() {
            return false;
        }
        evaluate(site)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = site;
        false
    }
}

#[cfg(feature = "enabled")]
#[cold]
fn evaluate(site: &str) -> bool {
    let plan = lock_plan().clone();
    let Some(plan) = plan else { return false };
    let Some(rule) = plan.rules.iter().find(|r| r.site == site) else {
        return false;
    };
    let k = rule.evals.fetch_add(1, Ordering::Relaxed);
    if !draw(plan.seed, site, k, rule.prob) {
        return false;
    }
    if let Some(max) = rule.max_hits {
        if rule.hits.fetch_add(1, Ordering::Relaxed) >= max {
            return false;
        }
    } else {
        rule.hits.fetch_add(1, Ordering::Relaxed);
    }
    INJECTED.fetch_add(1, Ordering::Relaxed);
    dg_obs::Registry::global()
        .counter(&dg_obs::label("dg_fault_injected_total", "site", site))
        .inc();
    dg_obs::dg_debug!("dg-fault: injected fault at {site}");
    true
}

/// Deterministic per-evaluation draw: FNV-1a over the site name mixed
/// with the plan seed and the evaluation index through the SplitMix64
/// finalizer (the same mixer as `dg_sweep::mix_seed`).
#[cfg(feature = "enabled")]
fn draw(seed: u64, site: &str, k: u64, prob: f64) -> bool {
    if prob >= 1.0 {
        return true;
    }
    if prob <= 0.0 {
        return false;
    }
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in site.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    let mut z = (seed ^ h).wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64 / (1u64 << 53) as f64) < prob
}

/// A panic-style injection site: panics with `injected fault: <site>`
/// when the armed plan says so, otherwise returns normally.
#[inline]
pub fn fail_point(site: &str) {
    if should_fail(site) {
        panic!("injected fault: {site}");
    }
}

/// An I/O-style injection site: fails with a *transient*
/// ([`std::io::ErrorKind::Interrupted`]) error when the armed plan says
/// so, otherwise `Ok(())`. Callers surviving transient I/O wrap the
/// real operation and this check together in [`retry`].
#[inline]
pub fn io_check(site: &str) -> std::io::Result<()> {
    if should_fail(site) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected fault: {site}"),
        ));
    }
    Ok(())
}

/// Whether an I/O error is transient — worth a bounded retry. Injected
/// faults ([`io_check`]) are `Interrupted`, so they land in this class
/// by construction.
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Total faults injected by this process so far (all sites), counted
/// regardless of `dg-obs` runtime gating.
pub fn injected_total() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Deterministic backoff before retry `attempt` (0-based): `1ms <<
/// attempt`, capped at 16ms. No jitter — retries must be reproducible.
pub fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(1u64 << attempt.min(4))
}

/// Runs `f` up to `attempts` times, sleeping [`backoff`] between tries,
/// retrying only while `transient` says the error is worth it. The
/// final error (transient or not) is returned unchanged.
///
/// # Errors
///
/// Whatever `f` last returned.
///
/// # Example
///
/// ```
/// let _guard = dg_fault::scoped(dg_fault::FaultPlan::new(0).always("store.read.err", 2));
/// let value = dg_fault::retry(4, dg_fault::is_transient, || {
///     dg_fault::io_check("store.read.err")?;
///     Ok::<_, std::io::Error>(42)
/// })
/// .unwrap();
/// assert_eq!(value, 42);
/// ```
pub fn retry<T, E>(
    attempts: u32,
    transient: impl Fn(&E) -> bool,
    mut f: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if attempt + 1 < attempts && transient(&e) => {
                std::thread::sleep(backoff(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The plan is process-global; tests in this binary serialize on
    /// this lock so one test's plan cannot leak into another's sites.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _s = serial();
        set_plan(None);
        assert!(!enabled());
        assert!(!should_fail("sweep.trial.panic"));
        assert!(io_check("store.write.err").is_ok());
        fail_point("daemon.worker.crash"); // must not panic
    }

    #[test]
    fn always_rule_fires_exactly_max_hits_times() {
        let _s = serial();
        let before = injected_total();
        let _guard = scoped(FaultPlan::new(9).always("a.b", 3));
        let fired: Vec<bool> = (0..6).map(|_| should_fail("a.b")).collect();
        assert_eq!(fired, [true, true, true, false, false, false]);
        assert_eq!(injected_total() - before, 3);
        // Unlisted sites pass through.
        assert!(!should_fail("c.d"));
    }

    #[test]
    fn probabilistic_draws_are_deterministic_in_seed_and_index() {
        let _s = serial();
        let run = |seed: u64| -> Vec<bool> {
            let _guard = scoped(FaultPlan::new(seed).rule("x.y", 0.5, None));
            (0..64).map(|_| should_fail("x.y")).collect()
        };
        let a = run(1);
        assert_eq!(a, run(1), "same seed must redraw identically");
        assert_ne!(a, run(2), "different seeds must differ");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fired), "p=0.5 fired {fired}/64");
    }

    #[test]
    fn io_check_failures_are_transient_and_named() {
        let _s = serial();
        let _guard = scoped(FaultPlan::new(0).always("store.read.err", 1));
        let err = io_check("store.read.err").unwrap_err();
        assert!(is_transient(&err));
        assert_eq!(err.to_string(), "injected fault: store.read.err");
    }

    #[test]
    fn retry_survives_bounded_transients_and_gives_up_past_attempts() {
        let _s = serial();
        set_plan(None);
        let mut calls = 0u32;
        let ok: Result<u32, std::io::Error> = retry(4, is_transient, || {
            calls += 1;
            if calls < 3 {
                Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "t"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(ok.unwrap(), 7);
        assert_eq!(calls, 3);

        let mut calls = 0u32;
        let err: Result<u32, std::io::Error> = retry(2, is_transient, || {
            calls += 1;
            Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "t"))
        });
        assert!(err.is_err());
        assert_eq!(calls, 2);

        // Non-transient errors do not retry at all.
        let mut calls = 0u32;
        let err: Result<u32, std::io::Error> = retry(4, is_transient, || {
            calls += 1;
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
        });
        assert!(err.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn scoped_guard_disarms_on_drop() {
        let _s = serial();
        {
            let _guard = scoped(FaultPlan::new(0).always("p.q", 10));
            assert!(should_fail("p.q"));
        }
        assert!(!enabled());
        assert!(!should_fail("p.q"));
    }
}
