//! The `dg-serve` binary: a phase-diagram daemon over a store
//! directory.
//!
//! ```text
//! dg-serve [--root DIR] [--addr HOST:PORT] [--workers N] [--workload flooding|synthetic]
//! ```
//!
//! Binds the address (default `127.0.0.1:0`, an ephemeral port), prints
//! the bound address on stdout, and also writes it to
//! `<root>/dg-serve.addr` so scripts and tests can find a daemon that
//! picked its own port. Runs until killed; on restart over the same
//! root, incomplete sweeps resume from their checkpoints.
//!
//! Stderr verbosity is controlled by `DG_LOG` (`error` — the default —
//! `info`, or `debug`; `debug` logs every request line). Telemetry is
//! always on: scrape `GET /metrics`, or read `GET /status`.

use std::process::exit;
use std::sync::Arc;

use dg_obs::dg_error;
use dg_serve::{http, ArtifactStore, Daemon, Workload};

struct Args {
    root: String,
    addr: String,
    workers: usize,
    workload: Workload,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: "dg-serve-data".to_string(),
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        workload: Workload::flooding(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--root" => args.root = value("--root")?,
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--workload" => {
                args.workload = match value("--workload")?.as_str() {
                    "flooding" => Workload::flooding(),
                    "synthetic" => Workload::synthetic(),
                    other => return Err(format!("unknown workload {other:?}")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "dg-serve [--root DIR] [--addr HOST:PORT] [--workers N] [--workload flooding|synthetic]"
                );
                exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            dg_error!("dg-serve: {msg}");
            exit(2);
        }
    };
    let store = match ArtifactStore::open(&args.root) {
        Ok(store) => store,
        Err(e) => {
            dg_error!("dg-serve: opening store {:?}: {e}", args.root);
            exit(1);
        }
    };
    let resumed = store.incomplete_specs().map(|s| s.len()).unwrap_or(0);
    let daemon = match Daemon::start(store, args.workload, args.workers) {
        Ok(daemon) => Arc::new(daemon),
        Err(e) => {
            dg_error!("dg-serve: starting daemon: {e}");
            exit(1);
        }
    };
    let handler = Arc::clone(&daemon);
    let server = match http::serve(&args.addr as &str, move |req| handler.handle(req)) {
        Ok(server) => server,
        Err(e) => {
            dg_error!("dg-serve: binding {}: {e}", args.addr);
            exit(1);
        }
    };
    let addr = server.addr();
    // The port file lets clients of `--addr 127.0.0.1:0` find us.
    let addr_file = std::path::Path::new(&args.root).join("dg-serve.addr");
    if let Err(e) = std::fs::write(&addr_file, format!("{addr}\n")) {
        dg_error!("dg-serve: writing {}: {e}", addr_file.display());
        exit(1);
    }
    println!(
        "dg-serve listening on http://{addr} (root {:?}, {resumed} sweep(s) resumed)",
        args.root
    );
    // Serve until killed: the accept loop owns its thread; park this
    // one. Crash safety is the store's job, not a signal handler's.
    loop {
        std::thread::park();
    }
}
