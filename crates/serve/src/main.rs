//! The `dg-serve` binary: a phase-diagram daemon over a store
//! directory.
//!
//! ```text
//! dg-serve [--root DIR] [--addr HOST:PORT] [--workers N]
//!          [--workload flooding|synthetic] [--max-queue N] [--max-attempts N]
//! ```
//!
//! Binds the address (default `127.0.0.1:0`, an ephemeral port), prints
//! the bound address on stdout, and also writes it to
//! `<root>/dg-serve.addr` so scripts and tests can find a daemon that
//! picked its own port. On restart over the same root, incomplete
//! sweeps resume from their checkpoints.
//!
//! `SIGTERM`/`SIGINT` drain gracefully: the accept loop stops, the
//! worker pool finishes the sweeps it is on (checkpointing into the
//! store either way), the addr file is removed, and the process exits
//! `0`. A `SIGKILL` skips all of that — and the store's crash-safe
//! resume makes that fine too, which is exactly what the chaos suite
//! pins.
//!
//! Stderr verbosity is controlled by `DG_LOG` (`error` — the default —
//! `info`, or `debug`; `debug` logs every request line). Telemetry is
//! always on: scrape `GET /metrics`, or read `GET /status`.

use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dg_obs::{dg_error, dg_info};
use dg_serve::{http, ArtifactStore, Daemon, DaemonConfig, Workload};

/// Set by the signal handler; polled by the main thread's drain loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Registers [`on_signal`] for `SIGINT` (2) and `SIGTERM` (15) via the
/// libc `signal` symbol — this image has no `libc` crate, so the two
/// constants and the prototype are spelled out. Registration failure
/// (`SIG_ERR`) is reported but not fatal: the daemon still serves, it
/// just dies unclean, which the store survives by design.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIG_ERR: usize = usize::MAX;
    for signum in [2i32, 15] {
        // SAFETY: `signal` is the C standard library's registration
        // call; the handler only performs an atomic store, which is
        // async-signal-safe.
        let prev = unsafe { signal(signum, on_signal) };
        if prev == SIG_ERR {
            dg_error!("dg-serve: installing handler for signal {signum} failed");
        }
    }
}

struct Args {
    root: String,
    addr: String,
    workload: Workload,
    config: DaemonConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: "dg-serve-data".to_string(),
        addr: "127.0.0.1:0".to_string(),
        workload: Workload::flooding(),
        config: DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--root" => args.root = value("--root")?,
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-queue" => {
                args.config.max_queue = value("--max-queue")?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?;
            }
            "--max-attempts" => {
                args.config.max_job_attempts = value("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("--max-attempts: {e}"))?;
            }
            "--workload" => {
                args.workload = match value("--workload")?.as_str() {
                    "flooding" => Workload::flooding(),
                    "synthetic" => Workload::synthetic(),
                    other => return Err(format!("unknown workload {other:?}")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "dg-serve [--root DIR] [--addr HOST:PORT] [--workers N] [--workload flooding|synthetic] [--max-queue N] [--max-attempts N]"
                );
                exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            dg_error!("dg-serve: {msg}");
            exit(2);
        }
    };
    let store = match ArtifactStore::open(&args.root) {
        Ok(store) => store,
        Err(e) => {
            dg_error!("dg-serve: opening store {:?}: {e}", args.root);
            exit(1);
        }
    };
    let resumed = store.incomplete_specs().map(|s| s.len()).unwrap_or(0);
    let daemon = match Daemon::start_with(store, args.workload, args.config) {
        Ok(daemon) => Arc::new(daemon),
        Err(e) => {
            dg_error!("dg-serve: starting daemon: {e}");
            exit(1);
        }
    };
    let handler = Arc::clone(&daemon);
    let server = match http::serve(&args.addr as &str, move |req| handler.handle(req)) {
        Ok(server) => server,
        Err(e) => {
            dg_error!("dg-serve: binding {}: {e}", args.addr);
            exit(1);
        }
    };
    let addr = server.addr();
    // The port file lets clients of `--addr 127.0.0.1:0` find us.
    let addr_file = std::path::Path::new(&args.root).join("dg-serve.addr");
    if let Err(e) = std::fs::write(&addr_file, format!("{addr}\n")) {
        dg_error!("dg-serve: writing {}: {e}", addr_file.display());
        exit(1);
    }
    install_signal_handlers();
    println!(
        "dg-serve listening on http://{addr} (root {:?}, {resumed} sweep(s) resumed)",
        args.root
    );
    // Serve until signalled. The park timeout bounds shutdown latency;
    // unparks are spurious-safe because the loop just re-checks the flag.
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::park_timeout(Duration::from_millis(100));
    }
    dg_info!("dg-serve: signal received, draining");
    // Stop accepting, finish in-flight sweeps, tidy the addr file. Any
    // queued-but-unstarted work stays resumable on disk or is simply
    // re-POSTed; either way the next start over this root picks it up.
    server.shutdown();
    daemon.shutdown();
    let _ = std::fs::remove_file(&addr_file);
    println!("dg-serve: drained, exiting");
}
