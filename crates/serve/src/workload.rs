//! The trial functions a daemon is willing to run, and the admission
//! rules that keep them panic-free.
//!
//! A sweep fingerprint names a *grid*, not a *measurement*: the store
//! key says nothing about which trial function produced the samples. A
//! daemon therefore serves exactly one [`Workload`] — every artifact in
//! its store was produced by that workload's trial function, so the
//! fingerprint is a complete content address within the daemon.
//!
//! The workload also carries the validator that stands between the wire
//! and the worker pool: [`dg_sweep::SweepSpec::from_json`] guarantees a
//! well-formed *sweep*, but only the workload knows which axis values
//! its model accepts. Everything the trial function would panic or
//! error on is rejected at submission time with a `400`, so a worker
//! thread never sees a spec it cannot run to completion.

use std::sync::Arc;

/// The shape every workload trial function shares — what
/// [`dg_sweep::Sweep::run`] schedules across its worker pool.
type TrialFn = Arc<dyn Fn(&Cell, Trial) -> Option<f64> + Send + Sync>;

/// The multi-metric form: one row per trial, one slot per metric the
/// spec declares — what [`dg_sweep::Sweep::run_metrics`] schedules.
type MetricRowFn = Arc<dyn Fn(&Cell, Trial, &[Metric]) -> Vec<Option<f64>> + Send + Sync>;

use dg_edge_meg::{ShardedSparseEdgeMeg, SparseTwoStateEdgeMeg};
use dg_sweep::{Cell, Metric, SweepSpec, Trial};
use dynagraph::engine::{Simulation, TrialRecord};
use dynagraph::sweep::{trial_metrics, TRIAL_METRICS};
use dynagraph::Shards;

/// Round cap for flooding trials on cells without an explicit
/// `max_rounds` table — matches the repo's phase-diagram examples.
const DEFAULT_MAX_ROUNDS: u32 = 200_000;

/// Largest `n` the flooding workload admits: 2^20, comfortably inside
/// the u64 pair-index space and the scale the sharded executor targets.
const MAX_FLOODING_N: usize = 1_048_576;

/// Above this `n`, flooding trials switch from the exact-scan model to
/// the lane-sharded one and run on all cores. The threshold is the old
/// `floor(sqrt(2^53))` admission cap, so every spec a pre-sharding
/// daemon could have stored still runs on the exact-scan model and
/// reproduces its artifact bytes.
const SHARDED_FLOODING_N: usize = 92_682;

/// One family of measurements: a named trial function plus the
/// admission rule for specs it can run.
#[derive(Clone)]
pub struct Workload {
    name: &'static str,
    validate: fn(&SweepSpec) -> Result<(), String>,
    trial: TrialFn,
    metric_trial: MetricRowFn,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

impl Workload {
    /// The workload's name (reported by `GET /healthz`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Checks that every cell of `spec` is one this workload's trial
    /// function accepts; the message is served verbatim in the `400`.
    pub fn validate(&self, spec: &SweepSpec) -> Result<(), String> {
        (self.validate)(spec)
    }

    /// A clone of the trial function, in the shape [`dg_sweep::Sweep::run`]
    /// wants.
    pub fn trial_fn(&self) -> impl Fn(&Cell, Trial) -> Option<f64> + Send + Sync + 'static {
        let trial = Arc::clone(&self.trial);
        move |cell, t| trial(cell, t)
    }

    /// The multi-metric trial function for a spec declaring `metrics`,
    /// in the shape [`dg_sweep::Sweep::run_metrics`] wants. The metric
    /// list must be the spec's own (validated) declaration — it decides
    /// the row layout.
    pub fn metric_trial_fn(
        &self,
        metrics: Vec<Metric>,
    ) -> impl Fn(&Cell, Trial) -> Vec<Option<f64>> + Send + Sync + 'static {
        let trial = Arc::clone(&self.metric_trial);
        move |cell, t| trial(cell, t, &metrics)
    }

    /// The paper's phase-diagram workload: flooding time on a stationary
    /// sparse edge-MEG.
    ///
    /// Axes (any other name is rejected):
    ///
    /// * `n` — node count, integral, `2..=1_048_576` (required);
    /// * `q` — per-round edge death rate, in `(0, 1]` (required);
    /// * `p` — per-round edge birth rate, in `(0, 1]` (optional; absent
    ///   means the paper's sparse regime `p = 1.5/n`, and since axis
    ///   *presence* enters the fingerprint, the two parameterizations
    ///   never collide in the store).
    ///
    /// A trial builds the stationary model from the trial seed, floods
    /// from node 0 under the cell's round cap (`max_rounds` table entry,
    /// or 200 000), and reports the flooding time — `None` when the cap
    /// censors the trial. Cells with `n` above 92 682 (the pre-sharding
    /// admission cap) run on the lane-sharded model across all cores;
    /// smaller cells keep the exact-scan model, so artifacts stored by
    /// older daemons remain byte-reproducible.
    pub fn flooding() -> Self {
        fn validate(spec: &SweepSpec) -> Result<(), String> {
            let mut has = [false; 2]; // n, q
            for axis in spec.axes() {
                match axis.name() {
                    "n" => {
                        has[0] = true;
                        for &v in axis.values() {
                            if v.fract() != 0.0 || !(2.0..=MAX_FLOODING_N as f64).contains(&v) {
                                return Err(format!(
                                    "axis \"n\" value {v} must be an integer in 2..=1048576"
                                ));
                            }
                        }
                    }
                    "q" | "p" => {
                        has[1] |= axis.name() == "q";
                        for &v in axis.values() {
                            if !(v > 0.0 && v <= 1.0) {
                                return Err(format!(
                                    "axis {:?} value {v} must be in (0, 1]",
                                    axis.name()
                                ));
                            }
                        }
                    }
                    other => {
                        return Err(format!(
                            "unknown axis {other:?}: the flooding workload sweeps n, q and optionally p"
                        ));
                    }
                }
            }
            if !(has[0] && has[1]) {
                return Err("the flooding workload requires axes \"n\" and \"q\"".to_string());
            }
            if let Some(metrics) = spec.metrics() {
                for m in metrics {
                    if !TRIAL_METRICS.contains(&m.name()) {
                        return Err(format!(
                            "unknown metric {:?}: the flooding workload measures {TRIAL_METRICS:?}",
                            m.name()
                        ));
                    }
                }
            }
            Ok(())
        }

        fn record(cell: &Cell, trial: Trial) -> TrialRecord {
            let n = cell.usize("n");
            let q = cell.get("q");
            let p = cell.try_get("p").unwrap_or(1.5 / n as f64);
            let max_rounds = cell.max_rounds().unwrap_or(DEFAULT_MAX_ROUNDS);
            if n > SHARDED_FLOODING_N {
                Simulation::builder()
                    .model(move |seed| {
                        ShardedSparseEdgeMeg::stationary(n, p, q, seed)
                            .expect("spec validated at submission")
                    })
                    .max_rounds(max_rounds)
                    .base_seed(trial.cell_seed)
                    .shards(Shards::Auto)
                    .run_trial(trial.index)
            } else {
                Simulation::builder()
                    .model(move |seed| {
                        SparseTwoStateEdgeMeg::stationary(n, p, q, seed)
                            .expect("spec validated at submission")
                    })
                    .max_rounds(max_rounds)
                    .base_seed(trial.cell_seed)
                    .run_trial(trial.index)
            }
        }

        Workload {
            name: "flooding",
            validate,
            trial: Arc::new(|cell: &Cell, trial: Trial| record(cell, trial).time.map(f64::from)),
            metric_trial: Arc::new(|cell: &Cell, trial: Trial, metrics: &[Metric]| {
                trial_metrics(&record(cell, trial), cell.usize("n"), metrics)
            }),
        }
    }

    /// A model-free workload for tests and benches: accepts any spec and
    /// returns a cheap pure function of `(cell, seed)`, censoring one
    /// seed in 13 to exercise the `null`-sample paths.
    pub fn synthetic() -> Self {
        fn scalar(cell: &Cell, trial: Trial) -> Option<f64> {
            (!trial.seed.is_multiple_of(13))
                .then(|| cell.values().iter().sum::<f64>() + (trial.seed % 7) as f64)
        }
        Workload {
            name: "synthetic",
            validate: |_| Ok(()),
            trial: Arc::new(scalar),
            // Slot 0 censors like the scalar path; later slots always
            // complete, so multi-metric specs exercise *per-metric*
            // censoring (one trial mixing null and numeric slots).
            metric_trial: Arc::new(|cell: &Cell, trial: Trial, metrics: &[Metric]| {
                (0..metrics.len())
                    .map(|m| {
                        if m == 0 {
                            scalar(cell, trial)
                        } else {
                            Some(
                                cell.values().iter().sum::<f64>()
                                    + (trial.seed % 7 + m as u64) as f64,
                            )
                        }
                    })
                    .collect()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sweep::{Axis, TrialBudget};

    fn spec(axes: Vec<Axis>) -> SweepSpec {
        SweepSpec::new(axes, 1, TrialBudget::fixed(1))
    }

    #[test]
    fn flooding_validator_rules() {
        let w = Workload::flooding();
        assert!(w
            .validate(&spec(vec![
                Axis::ints("n", [16, 32]),
                Axis::log("q", 0.1, 0.4, 2),
            ]))
            .is_ok());
        assert!(w
            .validate(&spec(vec![
                Axis::ints("n", [16]),
                Axis::explicit("q", [1.0]),
                Axis::explicit("p", [0.5]),
            ]))
            .is_ok());
        // The old 92 682 admission cap is gone: million-node cells are
        // admitted (and routed to the sharded model).
        assert!(w
            .validate(&spec(vec![
                Axis::ints("n", [100_000, 1_048_576]),
                Axis::explicit("q", [0.1]),
            ]))
            .is_ok());
        let bad: Vec<Vec<Axis>> = vec![
            vec![Axis::ints("n", [16])],                                    // no q
            vec![Axis::explicit("q", [0.1])],                               // no n
            vec![Axis::ints("n", [1]), Axis::explicit("q", [0.1])],         // n too small
            vec![Axis::ints("n", [2_000_000]), Axis::explicit("q", [0.1])], // n too large
            vec![Axis::explicit("n", [4.5]), Axis::explicit("q", [0.1])],   // fractional n
            vec![Axis::ints("n", [16]), Axis::explicit("q", [1.5])],        // q > 1
            vec![
                Axis::ints("n", [16]),
                Axis::explicit("q", [0.1]),
                Axis::explicit("p", [0.0]),
            ], // p = 0
            vec![
                Axis::ints("n", [16]),
                Axis::explicit("q", [0.1]),
                Axis::explicit("rounds", [5.0]),
            ], // unknown axis
        ];
        for axes in bad {
            assert!(w.validate(&spec(axes.clone())).is_err(), "{axes:?}");
        }
    }

    #[test]
    fn flooding_trial_matches_direct_engine_run() {
        // The workload's trial function is the same glue the examples
        // hand-write; pin one (cell, trial) against the engine directly.
        let w = Workload::flooding();
        let s = SweepSpec::new(
            vec![Axis::ints("n", [24]), Axis::explicit("q", [0.3])],
            0xFEED,
            TrialBudget::fixed(2),
        );
        let report = s.sweep().run(w.trial_fn()).unwrap();
        let p = 1.5 / 24.0;
        let direct = Simulation::builder()
            .model(move |seed| SparseTwoStateEdgeMeg::stationary(24, p, 0.3, seed).unwrap())
            .max_rounds(200_000)
            .base_seed(dg_sweep::mix_seed(0xFEED, 0))
            .run_trial(1)
            .time
            .map(f64::from);
        assert_eq!(report.cell(0).samples[1], vec![direct]);
    }

    #[test]
    fn flooding_routes_large_n_to_sharded_model() {
        // Above the old cap the workload builds the lane-sharded model;
        // pin its sample against a direct sharded-model run, and check
        // the shard-count independence the store relies on (the same
        // spec must hash to the same artifact on any machine).
        let n = SHARDED_FLOODING_N + 1;
        let p = 1.5 / n as f64; // the sparse default the absent axis implies
        let w = Workload::flooding();
        let s = SweepSpec::new(
            vec![Axis::ints("n", [n]), Axis::explicit("q", [0.5])],
            0xDA7A,
            TrialBudget::fixed(1),
        );
        assert!(w.validate(&s).is_ok());
        let report = s.sweep().run(w.trial_fn()).unwrap();
        let direct = Simulation::builder()
            .model(move |seed| ShardedSparseEdgeMeg::stationary(n, p, 0.5, seed).unwrap())
            .max_rounds(200_000)
            .base_seed(dg_sweep::mix_seed(0xDA7A, 0))
            .shards(4)
            .run_trial(0)
            .time
            .map(f64::from);
        assert_eq!(report.cell(0).samples[0], vec![direct]);
    }

    #[test]
    fn flooding_validates_metric_names() {
        let w = Workload::flooding();
        let axes = || vec![Axis::ints("n", [16]), Axis::explicit("q", [0.5])];
        let good = spec(axes()).with_metrics(vec![
            Metric::new("rounds"),
            Metric::observe("messages"),
            Metric::observe("coverage"),
        ]);
        assert!(w.validate(&good).is_ok());
        let bad = spec(axes()).with_metrics(vec![Metric::new("latency")]);
        let err = w.validate(&bad).unwrap_err();
        assert!(err.contains("latency"), "{err}");
    }

    #[test]
    fn flooding_metric_rows_match_direct_engine_records() {
        // The multi-metric trial extracts from the same record the
        // scalar path observes: rows must line up slot-for-slot with a
        // direct engine run.
        let metrics = vec![
            Metric::new("rounds"),
            Metric::observe("messages"),
            Metric::observe("coverage"),
        ];
        let w = Workload::flooding();
        let s = SweepSpec::new(
            vec![Axis::ints("n", [24]), Axis::explicit("q", [0.3])],
            0xFEED,
            TrialBudget::fixed(2),
        )
        .with_metrics(metrics.clone());
        assert!(w.validate(&s).is_ok());
        let report = s
            .sweep()
            .run_metrics(w.metric_trial_fn(metrics.clone()))
            .unwrap();
        let p = 1.5 / 24.0;
        let record = Simulation::builder()
            .model(move |seed| SparseTwoStateEdgeMeg::stationary(24, p, 0.3, seed).unwrap())
            .max_rounds(200_000)
            .base_seed(dg_sweep::mix_seed(0xFEED, 0))
            .run_trial(1);
        assert_eq!(
            report.cell(0).samples[1],
            vec![
                record.time.map(f64::from),
                Some(record.messages as f64),
                Some(record.informed as f64 / 24.0),
            ]
        );
    }

    #[test]
    fn synthetic_accepts_anything_and_censors_deterministically() {
        let w = Workload::synthetic();
        let s = spec(vec![Axis::explicit("whatever", [1.0, 2.0])]);
        assert!(w.validate(&s).is_ok());
        let a = s.sweep().run(w.trial_fn()).unwrap();
        let b = s.sweep().run(w.trial_fn()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn synthetic_metric_rows_censor_per_metric() {
        let w = Workload::synthetic();
        let metrics = vec![Metric::observe("a"), Metric::observe("b")];
        let s = spec(vec![Axis::explicit("x", [1.0])]).with_metrics(metrics.clone());
        // Enough trials that seed % 13 == 0 happens at least once.
        let s = SweepSpec::new(s.axes().to_vec(), 1, TrialBudget::fixed(32))
            .with_metrics(metrics.clone());
        let report = s.sweep().run_metrics(w.metric_trial_fn(metrics)).unwrap();
        let cell = report.cell(0);
        assert!(
            cell.incomplete_of(0) > 0,
            "slot 0 censors like the scalar path"
        );
        assert_eq!(cell.incomplete_of(1), 0, "later slots always complete");
    }
}
