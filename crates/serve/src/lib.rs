//! # dg-serve — phase diagrams as a service
//!
//! A sweep artifact is expensive to make and cheap to keep: hours of
//! Monte-Carlo trials collapse into one JSON file whose identity — the
//! [`dg_sweep::SweepReport::fingerprint`] over axes, round caps, seed,
//! and budget — is computable *before* running anything
//! ([`dg_sweep::SweepSpec::fingerprint`]). This crate turns that into a
//! service:
//!
//! * [`ArtifactStore`] — a content-addressed directory
//!   (`store/<fingerprint>.json`) with an in-memory index, atomic
//!   idempotent writes, and quarantine (never a crash) for files that
//!   fail validation;
//! * [`Daemon`] — request routing plus a background worker pool: a
//!   `POST`ed spec is served from the store on a hit, and on a miss the
//!   sweep runs in the background *checkpointing into the store*, so a
//!   killed daemon restarts into a resume, not a re-run;
//! * [`http`] — the hand-rolled HTTP/1.1 layer (std `TcpListener`; this
//!   crate takes no dependencies beyond the workspace);
//! * [`Workload`] — the one trial-function family a daemon serves (the
//!   paper's edge-MEG flooding phase diagram), with the admission rule
//!   that keeps worker threads panic-free.
//!
//! The load-bearing invariant is inherited from `dg-sweep` and extended
//! over the wire: the bytes `GET /sweep/<fp>` serves are byte-identical
//! to what a direct [`dg_sweep::Sweep`] run of the same spec writes —
//! whether the daemon computed the artifact in one go, was SIGKILLed
//! halfway and resumed on restart, or another client had posted the
//! same spec first.
//!
//! ## Route table
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness (workload, artifact/pending counts) |
//! | `GET /status` | operator view: store size, queue depth, in-flight sweeps, per-endpoint request counts and mean latency |
//! | `GET /metrics` | Prometheus text exposition of the process-wide [`dg_obs`] registry (requests, engine spans, sweep progress) |
//! | `GET /sweeps` | index of stored artifacts + pending fingerprints |
//! | `GET /sweep/<fp>` | the artifact, raw JSON (or CSV via `?format=csv` / `Accept: text/csv`); `202` while in flight, `500` if its job failed for good |
//! | `GET /sweep/<fp>/cell?axis=v&…` | exact or nearest cell summary, with grid distance |
//! | `POST /sweep` | a [`dg_sweep::SweepSpec`]: `200` + artifact on hit, `202` + fingerprint on miss, `400` on rejection, `503` + `Retry-After` when the queue is full |
//!
//! Request handling is instrumented ([`Daemon::handle`] records
//! per-endpoint counters and latency histograms) and logged at
//! `DG_LOG=debug`; worker lifecycle lands at `info`/`error`.
//!
//! ## Fault tolerance
//!
//! The daemon is built to *degrade*, not fall over, and the `dg-fault`
//! chaos suite holds it to that:
//!
//! * a job that panics (`daemon.worker.crash`) is requeued with its
//!   attempts bounded by [`DaemonConfig::max_job_attempts`]; past the
//!   bound the fingerprint is surfaced as `failed` in `/status` and
//!   `/sweeps` and `GET /sweep/<fp>` answers `500` until a re-`POST`
//!   clears it;
//! * store I/O passes the `store.read.err`/`store.write.err` sites with
//!   bounded deterministic retries, and a checkpoint corrupted mid-run
//!   is quarantined ([`ArtifactStore::quarantine_fingerprint`]) so the
//!   re-run starts clean;
//! * both the accept loop ([`http::serve_with`]) and the job queue
//!   ([`DaemonConfig::max_queue`]) are bounded, answering `503` +
//!   `Retry-After` instead of accepting unbounded work;
//! * every daemon lock recovers from poisoning — a panicking holder
//!   never wedges later requests.
//!
//! Through all of that, the served bytes stay pinned: a sweep that
//! crashed, was requeued, and resumed serves the same bytes a fault-free
//! run writes.
//!
//! ## Example
//!
//! ```no_run
//! use dg_serve::{http, ArtifactStore, Daemon, Workload};
//! use std::sync::Arc;
//!
//! let store = ArtifactStore::open("phase-diagrams").unwrap();
//! let daemon = Arc::new(Daemon::start(store, Workload::flooding(), 1).unwrap());
//! let handler = Arc::clone(&daemon);
//! let server = http::serve("127.0.0.1:0", move |req| handler.handle(req)).unwrap();
//! println!("serving on {}", server.addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
pub mod http;
mod store;
mod workload;

pub use daemon::{Daemon, DaemonConfig, Submission};
pub use store::{ArtifactMeta, ArtifactStore, StoreError};
pub use workload::Workload;
