//! The content-addressed artifact store.
//!
//! One sweep artifact lives at `store/<fingerprint>.json`, where the
//! filename is the decimal [`SweepReport::fingerprint`] of its contents
//! — the same identity [`SweepSpec::fingerprint`] computes before the
//! sweep runs, so a spec *names* its artifact without running anything.
//! The store keeps an in-memory index of per-artifact metadata (rebuilt
//! by scanning the directory on open) and serves the raw on-disk bytes,
//! never a re-serialization: what `GET /sweep/<fp>` returns is
//! byte-for-byte what `SweepReport::to_json` wrote.
//!
//! Two properties the daemon leans on:
//!
//! * **Writes are atomic and idempotent.** [`ArtifactStore::put`]
//!   writes to a unique temporary sibling and renames into place, so
//!   concurrent puts of the same artifact race benignly — both write
//!   identical bytes, rename is atomic, and the survivor is valid.
//! * **Corruption is quarantined, not fatal.** A file whose name is not
//!   a fingerprint, whose JSON does not parse, or whose recomputed
//!   fingerprint disagrees with its filename is moved to `quarantine/`
//!   during the open scan; the store comes up with everything else.
//!   Mid-run corruption gets the same treatment on demand:
//!   [`ArtifactStore::quarantine_fingerprint`] evicts a checkpoint that
//!   stopped parsing so the daemon can re-run its spec from scratch.
//! * **Transient I/O is retried, bounded.** Reads and writes pass
//!   through the `store.read.err` / `store.write.err` `dg-fault` sites
//!   and a deterministic [`dg_fault::retry`] loop, so an injected (or
//!   real) `Interrupted`-class error costs a bounded backoff, not an
//!   artifact.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dg_sweep::{SweepError, SweepReport, SweepSpec};

/// Per-process counter making temporary file names unique under
/// concurrent puts.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Bounded attempts for store reads/writes hitting transient errors.
const IO_ATTEMPTS: u32 = 4;

/// Store failures: I/O around the directory, or artifact-layer errors
/// from parsing/serializing sweeps.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error, with the path it happened on.
    Io(PathBuf, std::io::Error),
    /// The artifact layer rejected the bytes.
    Artifact(SweepError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "store io error at {}: {e}", path.display()),
            StoreError::Artifact(e) => write!(f, "store artifact error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<SweepError> for StoreError {
    fn from(e: SweepError) -> Self {
        StoreError::Artifact(e)
    }
}

/// Indexed metadata for one stored artifact — everything `GET /sweeps`
/// reports without re-reading files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// The artifact's content address.
    pub fingerprint: u64,
    /// Whether every cell has met its budget (a `false` entry is an
    /// in-flight checkpoint, resumable to completion).
    pub complete: bool,
    /// Number of grid cells.
    pub cells: usize,
    /// Number of cells whose stopping rule has fired.
    pub decided_cells: usize,
    /// Trials recorded so far, across all cells.
    pub total_trials: usize,
    /// Axis names with their lengths, in declaration order.
    pub axes: Vec<(String, usize)>,
}

impl ArtifactMeta {
    fn of_report(fingerprint: u64, report: &SweepReport) -> Self {
        ArtifactMeta {
            fingerprint,
            complete: report.is_complete(),
            cells: report.cells().len(),
            decided_cells: report.cells().iter().filter(|c| c.decided).count(),
            total_trials: report.total_trials(),
            axes: report
                .axes()
                .iter()
                .map(|a| (a.name().to_string(), a.values().len()))
                .collect(),
        }
    }
}

/// The store: a root directory plus the in-memory index of what is in
/// it. All methods take `&self`; the index is internally synchronized,
/// so one store can be shared across the daemon's threads.
#[derive(Debug)]
pub struct ArtifactStore {
    store_dir: PathBuf,
    quarantine_dir: PathBuf,
    index: Mutex<BTreeMap<u64, ArtifactMeta>>,
}

impl ArtifactStore {
    /// The index lock, recovering from poisoning: the index is a cache
    /// of on-disk state, so a panicking holder cannot leave it less
    /// consistent than a process kill would — and kills are already
    /// handled by the open-time rescan.
    fn index(&self) -> MutexGuard<'_, BTreeMap<u64, ArtifactMeta>> {
        self.index.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Opens (creating if needed) the store under `root` and scans
    /// `root/store/*.json` into the index, quarantining anything that
    /// is not a well-formed artifact at its own fingerprint.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref();
        let store_dir = root.join("store");
        let quarantine_dir = root.join("quarantine");
        std::fs::create_dir_all(&store_dir).map_err(|e| StoreError::Io(store_dir.clone(), e))?;
        let store = ArtifactStore {
            store_dir: store_dir.clone(),
            quarantine_dir,
            index: Mutex::new(BTreeMap::new()),
        };
        let entries =
            std::fs::read_dir(&store_dir).map_err(|e| StoreError::Io(store_dir.clone(), e))?;
        for entry in entries {
            let path = entry
                .map_err(|e| StoreError::Io(store_dir.clone(), e))?
                .path();
            // Leftover temporaries from a killed writer are garbage by
            // construction; sweep them rather than quarantining.
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"))
            {
                let _ = std::fs::remove_file(&path);
                continue;
            }
            match store.admit(&path) {
                Ok(meta) => {
                    store.index().insert(meta.fingerprint, meta);
                }
                Err(_) => store.quarantine(&path)?,
            }
        }
        Ok(store)
    }

    /// Validates one file as an artifact stored at its own fingerprint.
    fn admit(&self, path: &Path) -> Result<ArtifactMeta, StoreError> {
        let named: u64 = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_suffix(".json"))
            .and_then(|stem| stem.parse().ok())
            .ok_or_else(|| {
                StoreError::Artifact(SweepError::Parse(format!(
                    "file name {:?} is not <fingerprint>.json",
                    path.file_name()
                )))
            })?;
        let text = dg_fault::retry(IO_ATTEMPTS, dg_fault::is_transient, || {
            dg_fault::io_check("store.read.err")?;
            std::fs::read_to_string(path)
        })
        .map_err(|e| StoreError::Io(path.to_path_buf(), e))?;
        let report = SweepReport::from_json(&text)?;
        if report.fingerprint() != named {
            return Err(StoreError::Artifact(SweepError::Parse(format!(
                "artifact named {named} has fingerprint {}",
                report.fingerprint()
            ))));
        }
        Ok(ArtifactMeta::of_report(named, &report))
    }

    /// Moves a rejected file into `quarantine/`, never overwriting an
    /// earlier quarantined file of the same name.
    fn quarantine(&self, path: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(&self.quarantine_dir)
            .map_err(|e| StoreError::Io(self.quarantine_dir.clone(), e))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_string());
        let mut dest = self.quarantine_dir.join(&name);
        let mut attempt = 1u32;
        while dest.exists() {
            dest = self.quarantine_dir.join(format!("{name}.{attempt}"));
            attempt += 1;
        }
        std::fs::rename(path, &dest).map_err(|e| StoreError::Io(path.to_path_buf(), e))?;
        Ok(())
    }

    /// The canonical on-disk path of a fingerprint's artifact — where a
    /// checkpointing sweep should write so its partial states land in
    /// the store.
    pub fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.store_dir.join(format!("{fingerprint}.json"))
    }

    /// Inserts an artifact: atomic write-via-rename at its fingerprint,
    /// then index update. Re-putting an already-stored artifact is
    /// idempotent, including concurrently.
    pub fn put(&self, report: &SweepReport) -> Result<ArtifactMeta, StoreError> {
        let fingerprint = report.fingerprint();
        let dest = self.path_for(fingerprint);
        let tmp = self.store_dir.join(format!(
            ".tmp-{fingerprint}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        dg_fault::retry(IO_ATTEMPTS, dg_fault::is_transient, || {
            dg_fault::io_check("store.write.err")?;
            std::fs::write(&tmp, report.to_json())
        })
        .map_err(|e| StoreError::Io(tmp.clone(), e))?;
        if let Err(e) = std::fs::rename(&tmp, &dest) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::Io(dest, e));
        }
        let meta = ArtifactMeta::of_report(fingerprint, report);
        self.index().insert(fingerprint, meta.clone());
        Ok(meta)
    }

    /// Re-reads a fingerprint's file from disk into the index — how the
    /// daemon picks up files a checkpointing [`dg_sweep::Sweep`] wrote
    /// directly at [`ArtifactStore::path_for`]. Returns `Ok(None)` when
    /// no such file exists; removes a vanished fingerprint from the
    /// index.
    pub fn refresh(&self, fingerprint: u64) -> Result<Option<ArtifactMeta>, StoreError> {
        let path = self.path_for(fingerprint);
        if !path.exists() {
            self.index().remove(&fingerprint);
            return Ok(None);
        }
        let meta = self.admit(&path)?;
        self.index().insert(fingerprint, meta.clone());
        Ok(Some(meta))
    }

    /// Evicts a fingerprint whose on-disk file went bad *mid-run* —
    /// the same move-to-`quarantine/` treatment the open scan applies,
    /// on demand. The index entry is dropped either way; returns
    /// whether a file was actually moved. After this the daemon can
    /// re-enqueue the spec and the re-run starts from a clean slate
    /// instead of tripping over the corrupt checkpoint forever.
    pub fn quarantine_fingerprint(&self, fingerprint: u64) -> Result<bool, StoreError> {
        self.index().remove(&fingerprint);
        let path = self.path_for(fingerprint);
        if !path.exists() {
            return Ok(false);
        }
        self.quarantine(&path)?;
        Ok(true)
    }

    /// The stored bytes of an artifact, exactly as on disk.
    pub fn get_raw(&self, fingerprint: u64) -> Result<Option<Vec<u8>>, StoreError> {
        if !self.index().contains_key(&fingerprint) {
            return Ok(None);
        }
        let path = self.path_for(fingerprint);
        let read = dg_fault::retry(IO_ATTEMPTS, dg_fault::is_transient, || {
            dg_fault::io_check("store.read.err")?;
            std::fs::read(&path)
        });
        match read {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::Io(path, e)),
        }
    }

    /// The parsed artifact.
    pub fn get(&self, fingerprint: u64) -> Result<Option<SweepReport>, StoreError> {
        match self.get_raw(fingerprint)? {
            None => Ok(None),
            Some(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                Ok(Some(SweepReport::from_json(&text)?))
            }
        }
    }

    /// The indexed metadata of one fingerprint.
    pub fn meta(&self, fingerprint: u64) -> Option<ArtifactMeta> {
        self.index().get(&fingerprint).cloned()
    }

    /// All indexed artifacts, ordered by fingerprint.
    pub fn list(&self) -> Vec<ArtifactMeta> {
        self.index().values().cloned().collect()
    }

    /// The specs of every *incomplete* stored artifact — the daemon's
    /// restart-resume worklist.
    pub fn incomplete_specs(&self) -> Result<Vec<SweepSpec>, StoreError> {
        let pending: Vec<u64> = self
            .index
            .lock()
            .unwrap()
            .values()
            .filter(|m| !m.complete)
            .map(|m| m.fingerprint)
            .collect();
        let mut specs = Vec::with_capacity(pending.len());
        for fp in pending {
            if let Some(report) = self.get(fp)? {
                specs.push(SweepSpec::of_report(&report));
            }
        }
        Ok(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sweep::{Axis, TrialBudget};

    fn tmp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("dg_serve_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn small_report(seed: u64) -> SweepReport {
        SweepSpec::new(vec![Axis::ints("n", [4, 8])], seed, TrialBudget::fixed(2))
            .sweep()
            .run(|cell, trial| Some(cell.get("n") + (trial.seed % 3) as f64))
            .unwrap()
    }

    #[test]
    fn put_get_list_round_trip() {
        let root = tmp_root("roundtrip");
        let store = ArtifactStore::open(&root).unwrap();
        assert!(store.list().is_empty());
        let report = small_report(1);
        let meta = store.put(&report).unwrap();
        assert_eq!(meta.fingerprint, report.fingerprint());
        assert!(meta.complete);
        assert_eq!(meta.axes, vec![("n".to_string(), 2)]);
        let raw = store.get_raw(meta.fingerprint).unwrap().unwrap();
        assert_eq!(raw, report.to_json().into_bytes());
        assert_eq!(store.get(meta.fingerprint).unwrap().unwrap(), report);
        assert_eq!(store.list(), vec![meta]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_rebuilds_index_from_disk() {
        let root = tmp_root("reopen");
        let (fp1, fp2) = {
            let store = ArtifactStore::open(&root).unwrap();
            (
                store.put(&small_report(1)).unwrap().fingerprint,
                store.put(&small_report(2)).unwrap().fingerprint,
            )
        };
        let reopened = ArtifactStore::open(&root).unwrap();
        let listed: Vec<u64> = reopened.list().iter().map(|m| m.fingerprint).collect();
        let mut expected = vec![fp1, fp2];
        expected.sort_unstable();
        assert_eq!(listed, expected);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_and_misnamed_files_are_quarantined_not_fatal() {
        let root = tmp_root("quarantine");
        let store = ArtifactStore::open(&root).unwrap();
        let good = small_report(3);
        store.put(&good).unwrap();
        // Unparseable JSON, a wrong-name artifact, a non-fingerprint
        // name, and an orphaned temporary.
        std::fs::write(store.path_for(999), "{ not json").unwrap();
        std::fs::write(
            root.join("store").join("12345.json"),
            small_report(4).to_json(),
        )
        .unwrap();
        std::fs::write(root.join("store").join("notes.json"), "{}").unwrap();
        std::fs::write(root.join("store").join(".tmp-1-2-3"), "partial").unwrap();

        let reopened = ArtifactStore::open(&root).unwrap();
        let listed: Vec<u64> = reopened.list().iter().map(|m| m.fingerprint).collect();
        assert_eq!(listed, vec![good.fingerprint()]);
        let quarantined: Vec<String> = std::fs::read_dir(root.join("quarantine"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(quarantined.len(), 3, "{quarantined:?}");
        assert!(!root.join("store").join(".tmp-1-2-3").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mid_run_truncated_checkpoint_is_quarantined_and_rerun_converges() {
        let root = tmp_root("midrun_trunc");
        let store = ArtifactStore::open(&root).unwrap();
        let spec = SweepSpec::new(vec![Axis::ints("n", [4, 8])], 11, TrialBudget::fixed(2));
        let fp = spec.fingerprint();
        let trial_fn = |cell: &dg_sweep::Cell, trial: dg_sweep::Trial| {
            Some(cell.get("n") + (trial.seed % 3) as f64)
        };
        let clean = spec
            .sweep()
            .checkpoint(store.path_for(fp))
            .run(trial_fn)
            .unwrap();
        let clean_bytes = std::fs::read(store.path_for(fp)).unwrap();
        store.refresh(fp).unwrap().unwrap();

        // Disk goes bad mid-run: the checkpoint is cut in half. The
        // store notices on refresh, quarantines on demand, and a
        // from-scratch re-run restores byte-identical content.
        std::fs::write(store.path_for(fp), &clean_bytes[..clean_bytes.len() / 2]).unwrap();
        assert!(store.refresh(fp).is_err(), "truncated file must not admit");
        assert!(store.quarantine_fingerprint(fp).unwrap());
        assert_eq!(store.meta(fp), None);
        assert!(!store.path_for(fp).exists());
        assert!(root.join("quarantine").join(format!("{fp}.json")).exists());

        let rerun = spec
            .sweep()
            .checkpoint(store.path_for(fp))
            .run(trial_fn)
            .unwrap();
        assert_eq!(rerun, clean);
        assert_eq!(std::fs::read(store.path_for(fp)).unwrap(), clean_bytes);
        assert!(store.refresh(fp).unwrap().unwrap().complete);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mid_run_garbled_checkpoint_is_quarantined_and_rerun_converges() {
        let root = tmp_root("midrun_garble");
        let store = ArtifactStore::open(&root).unwrap();
        let report = small_report(5);
        let fp = store.put(&report).unwrap().fingerprint;
        // Same length, flipped bytes: parses as garbage, not JSON.
        let mut bytes = std::fs::read(store.path_for(fp)).unwrap();
        for b in bytes.iter_mut().take(64) {
            *b ^= 0x5A;
        }
        std::fs::write(store.path_for(fp), &bytes).unwrap();
        assert!(store.refresh(fp).is_err(), "garbled file must not admit");
        assert!(store.quarantine_fingerprint(fp).unwrap());
        // Quarantining an already-evicted or never-stored fingerprint
        // is a clean no-op.
        assert!(!store.quarantine_fingerprint(fp).unwrap());
        assert!(!store.quarantine_fingerprint(424242).unwrap());
        // Re-put restores the artifact.
        let meta = store.put(&report).unwrap();
        assert_eq!(store.meta(fp), Some(meta));
        assert_eq!(
            store.get_raw(fp).unwrap().unwrap(),
            report.to_json().into_bytes()
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn refresh_tracks_checkpoint_files_written_in_place() {
        let root = tmp_root("refresh");
        let store = ArtifactStore::open(&root).unwrap();
        let spec = SweepSpec::new(vec![Axis::ints("n", [4, 8])], 9, TrialBudget::fixed(2));
        let fp = spec.fingerprint();
        assert_eq!(store.refresh(fp).unwrap(), None);
        // A checkpointing sweep writes directly at path_for(fp)...
        let report = spec
            .sweep()
            .checkpoint(store.path_for(fp))
            .run(|cell, trial| Some(cell.get("n") + (trial.seed % 3) as f64))
            .unwrap();
        assert_eq!(report.fingerprint(), fp);
        // ...and refresh picks it up.
        let meta = store.refresh(fp).unwrap().unwrap();
        assert!(meta.complete);
        assert_eq!(store.meta(fp), Some(meta));
        let _ = std::fs::remove_dir_all(&root);
    }
}
