//! A hand-rolled HTTP/1.1 server on `std::net` — this image has no
//! crates.io, so the daemon speaks the protocol itself.
//!
//! Deliberately minimal: one request per connection (`Connection:
//! close`), bounded header and body sizes, percent-decoded query
//! strings, and nothing the daemon does not need. The accept loop hands
//! each connection to a short-lived thread — bounded by a concurrent-
//! handler cap ([`serve_with`]): past the cap a connection is answered
//! `503 Service Unavailable` with a `Retry-After` header instead of
//! spawning an unbounded pile of threads. A [`ServerHandle`] unblocks
//! the loop for a clean in-process shutdown (the production story for
//! an unclean one is the store's crash-safe resume, not this handle).
//!
//! The `http.conn.stall` `dg-fault` site stalls a handler before it
//! reads the request — how the chaos suite holds a slot open to drive
//! the cap deterministically.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY: usize = 4 * 1024 * 1024;
/// Per-connection socket timeout: a stalled client cannot pin its
/// handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Default concurrent-handler cap for [`serve`]; see [`serve_with`].
const DEFAULT_MAX_INFLIGHT: usize = 256;
/// `Retry-After` seconds suggested when the server sheds load.
const RETRY_AFTER_SECS: u32 = 1;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, query string stripped (`/sweep/42/cell`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header of the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter of the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response: status, content type, body, and an optional
/// `Retry-After` hint for load-shedding statuses.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Seconds for a `Retry-After` header, when backpressure applies.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A CSV response.
    pub fn csv(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type: "text/csv",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A plain-text response with an explicit content type (the
    /// Prometheus exposition needs `text/plain; version=0.0.4`).
    pub fn text(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A JSON error envelope `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\": ");
        push_json_string(&mut body, message);
        body.push_str("}\n");
        Response::json(status, body)
    }

    /// A `503 Service Unavailable` error envelope carrying a
    /// `Retry-After` header — the backpressure answer for a saturated
    /// accept loop or a full sweep queue.
    pub fn unavailable(message: &str) -> Self {
        let mut r = Response::error(503, message);
        r.retry_after = Some(RETRY_AFTER_SECS);
        r
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after {
            write!(stream, "Retry-After: {secs}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Appends a JSON string literal (escaped) to `out`.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Decodes `%XX` escapes and `+`-as-space in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses one request from a connection, or answers early with an error
/// response (`Err` carries what to send back).
fn read_request(stream: &mut BufReader<TcpStream>) -> Result<Request, Response> {
    // Head: everything up to the blank line, bounded.
    let mut head = Vec::new();
    loop {
        let mut line = Vec::new();
        stream
            .read_until(b'\n', &mut line)
            .map_err(|_| Response::error(400, "read failed"))?;
        if line.is_empty() {
            return Err(Response::error(400, "connection closed mid-request"));
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD {
            return Err(Response::error(431, "request head too large"));
        }
        if line == b"\r\n" || line == b"\n" {
            break;
        }
        if head.len() == line.len() {
            continue; // request line just read; keep going for headers
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "malformed request line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(Response::error(400, "malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| Response::error(400, "bad content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(Response::error(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|_| Response::error(400, "truncated body"))?;
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query,
        headers,
        body,
    })
}

/// A running server: bound address plus the shutdown handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. In-flight connection handlers
    /// finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accept_loop();
    }

    fn stop_accept_loop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accept_loop();
        }
    }
}

/// Binds `addr` and serves `handler` on a background accept loop, one
/// short-lived thread per connection, with the default concurrent-
/// handler cap. See [`serve_with`].
pub fn serve<H>(addr: impl ToSocketAddrs, handler: H) -> std::io::Result<ServerHandle>
where
    H: Fn(&Request) -> Response + Send + Sync + 'static,
{
    serve_with(addr, handler, DEFAULT_MAX_INFLIGHT)
}

/// Decrements the inflight count when a handler thread finishes — by
/// any exit path, including a panic unwinding through the handler.
struct InflightPermit(Arc<AtomicUsize>);

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Binds `addr` and serves `handler` with at most `max_inflight`
/// concurrently running connection handlers.
///
/// Past the cap the connection is still answered — a shedding thread
/// reads the request off the socket (so the client never sees a reset
/// mid-write) and replies [`Response::unavailable`]: `503` with
/// `Retry-After`, counted as `dg_http_rejected_total`. Shedding threads
/// do not hold permits; only real handlers do, so the cap bounds work,
/// not refusals.
pub fn serve_with<H>(
    addr: impl ToSocketAddrs,
    handler: H,
    max_inflight: usize,
) -> std::io::Result<ServerHandle>
where
    H: Fn(&Request) -> Response + Send + Sync + 'static,
{
    assert!(max_inflight > 0, "max_inflight must be at least 1");
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let inflight = Arc::new(AtomicUsize::new(0));
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if loop_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(conn) = conn else { continue };
            // Claim a permit optimistically; back out and shed if that
            // overshot the cap.
            if inflight.fetch_add(1, Ordering::SeqCst) >= max_inflight {
                inflight.fetch_sub(1, Ordering::SeqCst);
                dg_obs::Registry::global()
                    .counter("dg_http_rejected_total")
                    .inc();
                std::thread::spawn(move || shed_connection(conn));
                continue;
            }
            let permit = InflightPermit(Arc::clone(&inflight));
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || {
                let _permit = permit;
                handle_connection(conn, &*handler);
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Answers a connection the cap refused: drain the request, say 503.
fn shed_connection(conn: TcpStream) {
    let _ = conn.set_read_timeout(Some(IO_TIMEOUT));
    let _ = conn.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(conn);
    let _ = read_request(&mut reader);
    let mut conn = reader.into_inner();
    let _ = Response::unavailable("server saturated; retry shortly").write_to(&mut conn);
}

fn handle_connection<H>(conn: TcpStream, handler: &H)
where
    H: Fn(&Request) -> Response,
{
    // Chaos hook: hold this handler (and its inflight permit) open so
    // the suite can saturate the cap with a deterministic number of
    // connections instead of a timing race.
    if dg_fault::should_fail("http.conn.stall") {
        std::thread::sleep(Duration::from_millis(300));
    }
    let _ = conn.set_read_timeout(Some(IO_TIMEOUT));
    let _ = conn.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(conn);
    let response = match read_request(&mut reader) {
        Ok(request) => handler(&request),
        Err(early) => early,
    };
    let mut conn = reader.into_inner();
    let _ = response.write_to(&mut conn);
}

/// A one-shot HTTP/1.1 client request over a fresh connection — the
/// counterpart the integration tests and examples drive the daemon
/// with (and a reference for what the server expects on the wire).
///
/// Returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        conn,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    conn.write_all(body)?;
    conn.flush()?;
    let mut raw = Vec::new();
    conn.take((MAX_BODY + MAX_HEAD) as u64)
        .read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_and_routes_a_request() {
        let handle = serve("127.0.0.1:0", |req: &Request| {
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/echo path");
            assert_eq!(req.query_param("a"), Some("1.5"));
            assert_eq!(req.query_param("b"), Some("x y"));
            assert_eq!(req.header("x-test"), Some("yes"));
            Response::json(200, "{\"ok\": true}")
        })
        .unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        write!(
            conn,
            "GET /echo%20path?a=1.5&b=x+y HTTP/1.1\r\nHost: t\r\nX-Test: yes\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.ends_with("{\"ok\": true}"), "{out}");
        handle.shutdown();
    }

    #[test]
    fn posts_carry_bodies_and_client_helper_agrees() {
        let handle = serve("127.0.0.1:0", |req: &Request| {
            assert_eq!(req.method, "POST");
            Response::json(202, req.body.clone())
        })
        .unwrap();
        let (status, body) = request(handle.addr(), "POST", "/sweep", b"{\"x\": 1}").unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, b"{\"x\": 1}");
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let handle = serve("127.0.0.1:0", |_: &Request| Response::json(200, "ok")).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        write!(conn, "NOT-HTTP\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        handle.shutdown();
    }

    #[test]
    fn saturated_server_sheds_with_503_and_retry_after() {
        // Cap of 1: a handler parked on a channel holds the only slot,
        // so the second connection must be shed, not queued.
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let handle = serve_with(
            "127.0.0.1:0",
            move |_: &Request| {
                started_tx.send(()).unwrap();
                let _ = release_rx.lock().unwrap().recv();
                Response::json(200, "done")
            },
            1,
        )
        .unwrap();

        let mut slow = TcpStream::connect(handle.addr()).unwrap();
        write!(slow, "GET /a HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        started_rx.recv().unwrap(); // slot is now held

        let mut shed = TcpStream::connect(handle.addr()).unwrap();
        write!(shed, "GET /b HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        shed.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{out}"
        );
        assert!(out.contains("\r\nRetry-After: 1\r\n"), "{out}");

        release_tx.send(()).unwrap();
        let mut out = String::new();
        slow.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");

        // Slot freed: a fresh request is served normally again (the
        // dropped sender makes its recv return immediately).
        drop(release_tx);
        let (status, body) = request(handle.addr(), "GET", "/c", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"done");
        handle.shutdown();
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
