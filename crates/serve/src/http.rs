//! A hand-rolled HTTP/1.1 server on `std::net` — this image has no
//! crates.io, so the daemon speaks the protocol itself.
//!
//! Deliberately minimal: one request per connection (`Connection:
//! close`), bounded header and body sizes, percent-decoded query
//! strings, and nothing the daemon does not need. The accept loop hands
//! each connection to a short-lived thread; a [`ServerHandle`] unblocks
//! the loop for a clean in-process shutdown (the production story for
//! an unclean one is the store's crash-safe resume, not this handle).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY: usize = 4 * 1024 * 1024;
/// Per-connection socket timeout: a stalled client cannot pin its
/// handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, query string stripped (`/sweep/42/cell`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header of the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter of the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A CSV response.
    pub fn csv(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type: "text/csv",
            body: body.into(),
        }
    }

    /// A plain-text response with an explicit content type (the
    /// Prometheus exposition needs `text/plain; version=0.0.4`).
    pub fn text(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// A JSON error envelope `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\": ");
        push_json_string(&mut body, message);
        body.push_str("}\n");
        Response::json(status, body)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            _ => "Internal Server Error",
        }
    }

    fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Appends a JSON string literal (escaped) to `out`.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Decodes `%XX` escapes and `+`-as-space in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses one request from a connection, or answers early with an error
/// response (`Err` carries what to send back).
fn read_request(stream: &mut BufReader<TcpStream>) -> Result<Request, Response> {
    // Head: everything up to the blank line, bounded.
    let mut head = Vec::new();
    loop {
        let mut line = Vec::new();
        stream
            .read_until(b'\n', &mut line)
            .map_err(|_| Response::error(400, "read failed"))?;
        if line.is_empty() {
            return Err(Response::error(400, "connection closed mid-request"));
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD {
            return Err(Response::error(431, "request head too large"));
        }
        if line == b"\r\n" || line == b"\n" {
            break;
        }
        if head.len() == line.len() {
            continue; // request line just read; keep going for headers
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "malformed request line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(Response::error(400, "malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| Response::error(400, "bad content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(Response::error(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|_| Response::error(400, "truncated body"))?;
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query,
        headers,
        body,
    })
}

/// A running server: bound address plus the shutdown handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. In-flight connection handlers
    /// finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accept_loop();
    }

    fn stop_accept_loop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accept_loop();
        }
    }
}

/// Binds `addr` and serves `handler` on a background accept loop, one
/// short-lived thread per connection.
pub fn serve<H>(addr: impl ToSocketAddrs, handler: H) -> std::io::Result<ServerHandle>
where
    H: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if loop_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(conn) = conn else { continue };
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || handle_connection(conn, &*handler));
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection<H>(conn: TcpStream, handler: &H)
where
    H: Fn(&Request) -> Response,
{
    let _ = conn.set_read_timeout(Some(IO_TIMEOUT));
    let _ = conn.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(conn);
    let response = match read_request(&mut reader) {
        Ok(request) => handler(&request),
        Err(early) => early,
    };
    let mut conn = reader.into_inner();
    let _ = response.write_to(&mut conn);
}

/// A one-shot HTTP/1.1 client request over a fresh connection — the
/// counterpart the integration tests and examples drive the daemon
/// with (and a reference for what the server expects on the wire).
///
/// Returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        conn,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    conn.write_all(body)?;
    conn.flush()?;
    let mut raw = Vec::new();
    conn.take((MAX_BODY + MAX_HEAD) as u64)
        .read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_and_routes_a_request() {
        let handle = serve("127.0.0.1:0", |req: &Request| {
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/echo path");
            assert_eq!(req.query_param("a"), Some("1.5"));
            assert_eq!(req.query_param("b"), Some("x y"));
            assert_eq!(req.header("x-test"), Some("yes"));
            Response::json(200, "{\"ok\": true}")
        })
        .unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        write!(
            conn,
            "GET /echo%20path?a=1.5&b=x+y HTTP/1.1\r\nHost: t\r\nX-Test: yes\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.ends_with("{\"ok\": true}"), "{out}");
        handle.shutdown();
    }

    #[test]
    fn posts_carry_bodies_and_client_helper_agrees() {
        let handle = serve("127.0.0.1:0", |req: &Request| {
            assert_eq!(req.method, "POST");
            Response::json(202, req.body.clone())
        })
        .unwrap();
        let (status, body) = request(handle.addr(), "POST", "/sweep", b"{\"x\": 1}").unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, b"{\"x\": 1}");
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let handle = serve("127.0.0.1:0", |_: &Request| Response::json(200, "ok")).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        write!(conn, "NOT-HTTP\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        handle.shutdown();
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
