//! The query daemon: HTTP routes over an [`ArtifactStore`] plus a
//! background worker pool that runs cache-miss sweeps.
//!
//! The lifecycle of a request for a sweep nobody has run yet:
//!
//! 1. `POST /sweep` parses the body as a [`SweepSpec`], validates it
//!    against the daemon's [`Workload`], and fingerprints it;
//! 2. a store hit serves the artifact immediately (`200`); a miss
//!    enqueues the spec (`202`) — at most once per fingerprint;
//! 3. a worker runs the sweep *checkpointing directly into the store*
//!    at [`ArtifactStore::path_for`], so every intermediate state is a
//!    valid incomplete artifact at the right address;
//! 4. `GET /sweep/<fp>` serves whatever is stored — partial while the
//!    sweep runs (`"complete": false`), final bytes once decided.
//!
//! Crash safety falls out of step 3: a killed daemon leaves an
//! incomplete artifact where its restart's store scan finds it, and
//! [`Daemon::start`] re-enqueues every incomplete artifact's spec
//! ([`SweepSpec::of_report`]). Since resumed sweeps are byte-identical
//! to uninterrupted ones (the `dg-sweep` invariant), a client polling
//! across the crash cannot tell it happened — same fingerprint, same
//! final bytes.
//!
//! # Fault tolerance
//!
//! A job that panics (the `daemon.worker.crash` chaos site, a trial
//! panic escaping the sweep's own [`TrialPanic`] retry, a poisoned
//! lock in library code) does not kill its worker: the worker catches
//! the unwind, counts `dg_serve_worker_restarts_total`, and *requeues*
//! the job — bounded by [`DaemonConfig::max_job_attempts`], after
//! which the fingerprint lands in a `failed` map that `GET /status`,
//! `GET /sweeps`, and `GET /sweep/<fp>` (as a `500`) surface.
//! Re-`POST`ing a failed spec clears the failure and tries again from
//! whatever checkpoint survived. A checkpoint that stopped *parsing*
//! (mid-run disk corruption) is quarantined via
//! [`ArtifactStore::quarantine_fingerprint`] before the requeue, so
//! the re-run starts clean instead of tripping forever. The job queue
//! itself is bounded ([`DaemonConfig::max_queue`]): past the cap,
//! `POST /sweep` answers `503` + `Retry-After` instead of accepting
//! unbounded work. All daemon locks recover from poisoning — queue
//! state is re-derivable from disk, so a panicking holder must not
//! wedge every later request.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dg_obs::{dg_debug, dg_error, dg_info, Registry};
use dg_sweep::{SweepError, SweepReport, SweepSpec, TrialPanic};

use crate::http::{push_json_string, Request, Response};
use crate::store::{ArtifactMeta, ArtifactStore, StoreError};
use crate::workload::Workload;

/// What [`Daemon::submit`] decided about a spec.
#[derive(Debug)]
pub enum Submission {
    /// The artifact is stored and complete — a cache hit.
    Complete(ArtifactMeta),
    /// The sweep is queued or running; poll `GET /sweep/<fp>`.
    Pending(u64),
    /// The workload refused the spec (the message is the `400` body).
    Rejected(String),
    /// The job queue is at [`DaemonConfig::max_queue`] — the `503` +
    /// `Retry-After` backpressure answer.
    Busy,
}

/// Tuning for [`Daemon::start_with`]: pool size and the fault-handling
/// bounds.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Background sweep threads (at least 1).
    pub workers: usize,
    /// Jobs accepted but not yet claimed before `POST /sweep` sheds
    /// with `503`. `0` refuses all new work — useful for drain tests.
    pub max_queue: usize,
    /// Times one job may start (first run + requeues after a crash)
    /// before its fingerprint is marked failed.
    pub max_job_attempts: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 2,
            max_queue: 64,
            max_job_attempts: 3,
        }
    }
}

struct QueueState {
    jobs: VecDeque<SweepSpec>,
    /// Fingerprints queued or running — the dedup set.
    pending: HashSet<u64>,
    /// Starts per fingerprint, for the requeue bound.
    attempts: HashMap<u64, u32>,
    /// Fingerprints whose job exhausted its attempts, with the last
    /// error — cleared by resubmission.
    failed: BTreeMap<u64, String>,
    shutdown: bool,
}

struct Shared {
    store: ArtifactStore,
    workload: Workload,
    config: DaemonConfig,
    queue: Mutex<QueueState>,
    /// Signals workers that a job arrived (or shutdown began).
    wake: Condvar,
    /// Signals waiters that a job finished.
    done: Condvar,
}

impl Shared {
    /// The queue lock, recovering from poisoning: everything in
    /// [`QueueState`] is re-derivable (pending/attempts from the store
    /// scan, jobs by resubmission), so a panicking holder must not turn
    /// every later request into a panic of its own.
    fn qlock(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The daemon: a store, a workload, and the worker pool between them.
///
/// All request handling goes through [`Daemon::handle`], which is
/// `&self` and thread-safe — hand it to [`crate::http::serve`] behind
/// an `Arc`.
#[derive(Debug)]
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("workload", &self.workload)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Starts `workers` background sweep threads over `store`, and
    /// re-enqueues every incomplete stored artifact (the crash-resume
    /// scan). Incomplete artifacts the workload no longer validates are
    /// left in place, untouched.
    ///
    /// Starting a daemon switches [`dg_obs`] metric recording on for the
    /// whole process — serving telemetry (`GET /metrics`) is part of the
    /// daemon's contract, and recording never perturbs sweep results.
    pub fn start(
        store: ArtifactStore,
        workload: Workload,
        workers: usize,
    ) -> Result<Daemon, StoreError> {
        Daemon::start_with(
            store,
            workload,
            DaemonConfig {
                workers,
                ..DaemonConfig::default()
            },
        )
    }

    /// [`Daemon::start`] with explicit queue and fault bounds. The
    /// crash-resume scan ignores `max_queue`: work already accepted
    /// (and checkpointed) before a restart is never shed.
    pub fn start_with(
        store: ArtifactStore,
        workload: Workload,
        config: DaemonConfig,
    ) -> Result<Daemon, StoreError> {
        dg_obs::set_enabled(true);
        let resume: Vec<SweepSpec> = store
            .incomplete_specs()?
            .into_iter()
            .filter(|spec| workload.validate(spec).is_ok())
            .collect();
        let pending = resume.iter().map(SweepSpec::fingerprint).collect();
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            store,
            workload,
            config,
            queue: Mutex::new(QueueState {
                jobs: resume.into(),
                pending,
                attempts: HashMap::new(),
                failed: BTreeMap::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Daemon {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The daemon's store.
    pub fn store(&self) -> &ArtifactStore {
        &self.shared.store
    }

    /// Fingerprints currently queued or running, in no particular
    /// order.
    pub fn pending(&self) -> Vec<u64> {
        let queue = self.shared.qlock();
        queue.pending.iter().copied().collect()
    }

    /// Fingerprints whose job exhausted its attempts, with the last
    /// error, ordered by fingerprint.
    pub fn failed(&self) -> Vec<(u64, String)> {
        let queue = self.shared.qlock();
        queue
            .failed
            .iter()
            .map(|(fp, msg)| (*fp, msg.clone()))
            .collect()
    }

    /// Routes a spec: cache hit, freshly queued, deduplicated against
    /// an in-flight run, shed by the queue bound, or rejected by the
    /// workload. Submitting a spec whose fingerprint previously failed
    /// clears the failure and starts over with fresh attempts.
    pub fn submit(&self, spec: SweepSpec) -> Result<Submission, StoreError> {
        let fingerprint = spec.fingerprint();
        if let Some(meta) = self.shared.store.meta(fingerprint) {
            if meta.complete {
                return Ok(Submission::Complete(meta));
            }
        }
        if let Err(msg) = self.shared.workload.validate(&spec) {
            return Ok(Submission::Rejected(msg));
        }
        let mut queue = self.shared.qlock();
        if queue.pending.contains(&fingerprint) {
            return Ok(Submission::Pending(fingerprint));
        }
        if queue.jobs.len() >= self.shared.config.max_queue {
            return Ok(Submission::Busy);
        }
        queue.failed.remove(&fingerprint);
        queue.attempts.remove(&fingerprint);
        queue.pending.insert(fingerprint);
        queue.jobs.push_back(spec);
        self.shared.wake.notify_one();
        Ok(Submission::Pending(fingerprint))
    }

    /// Blocks until no job is queued or running, or the timeout lapses;
    /// returns whether the daemon went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.qlock();
        while !queue.pending.is_empty() {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, wait) = self
                .shared
                .done
                .wait_timeout(queue, left)
                .unwrap_or_else(|p| p.into_inner());
            queue = guard;
            if wait.timed_out() && !queue.pending.is_empty() {
                return false;
            }
        }
        true
    }

    /// Stops the worker pool and joins it. Workers finish the sweep
    /// they are on (it checkpoints into the store either way); queued
    /// jobs stay on disk as incomplete artifacts only if they already
    /// started — unstarted jobs are simply dropped, and a restart or
    /// re-submission schedules them again.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.qlock();
            queue.shutdown = true;
        }
        self.shared.wake.notify_all();
        let workers: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Serves one request: routes it, then records the outcome —
    /// `dg_http_requests_total{path,status}`,
    /// `dg_http_request_seconds{path}`, and a `DG_LOG=debug` request
    /// line. See the crate docs for the route table.
    pub fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        let response = self.route(req);
        let seconds = t0.elapsed().as_secs_f64();
        record_http(endpoint(req), response.status, seconds);
        dg_debug!(
            "dg-serve: {} {} -> {} in {:.1}ms",
            req.method,
            req.path,
            response.status,
            seconds * 1e3
        );
        response
    }

    fn route(&self, req: &Request) -> Response {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        let result = match (req.method.as_str(), segments.as_slice()) {
            ("GET", []) | ("GET", ["healthz"]) => Ok(self.health()),
            ("GET", ["status"]) => Ok(self.status()),
            ("GET", ["metrics"]) => Ok(self.metrics()),
            ("GET", ["sweeps"]) => Ok(self.list()),
            ("GET", ["sweep", fp]) => self.artifact(fp, req),
            ("GET", ["sweep", fp, "cell"]) => self.cell(fp, req),
            ("POST", ["sweep"]) => self.post_sweep(req),
            (_, [] | ["healthz"] | ["status"] | ["metrics"] | ["sweeps"] | ["sweep", ..]) => {
                Ok(Response::error(405, "method not allowed on this path"))
            }
            _ => Ok(Response::error(404, "no such path")),
        };
        result.unwrap_or_else(|e: StoreError| Response::error(500, &e.to_string()))
    }

    fn health(&self) -> Response {
        let mut body = String::from("{\"ok\": true, \"workload\": ");
        push_json_string(&mut body, self.shared.workload.name());
        body.push_str(&format!(
            ", \"artifacts\": {}, \"pending\": {}}}\n",
            self.shared.store.list().len(),
            self.pending().len()
        ));
        Response::json(200, body)
    }

    /// Queue depth (jobs not yet claimed), in-flight count (claimed,
    /// still running), and failed count, from one lock acquisition.
    fn queue_depths(&self) -> (usize, usize, usize) {
        let queue = self.shared.qlock();
        let queued = queue.jobs.len();
        (
            queued,
            queue.pending.len().saturating_sub(queued),
            queue.failed.len(),
        )
    }

    /// `GET /metrics`: the process-wide registry in Prometheus text
    /// exposition format. Store and queue gauges are refreshed at
    /// scrape time; everything else (request, engine, and sweep
    /// counters) accumulates as the daemon works.
    fn metrics(&self) -> Response {
        let reg = Registry::global();
        let (queued, in_flight, failed) = self.queue_depths();
        reg.gauge("dg_serve_artifacts")
            .set(self.shared.store.list().len() as i64);
        reg.gauge("dg_serve_queue_depth").set(queued as i64);
        reg.gauge("dg_serve_inflight_sweeps").set(in_flight as i64);
        reg.gauge("dg_serve_failed_sweeps").set(failed as i64);
        Response::text("text/plain; version=0.0.4", reg.render_prometheus())
    }

    /// `GET /status`: the operator's JSON view — workload, store size,
    /// queue depth, in-flight sweeps, total sweep trials, and
    /// per-endpoint request counts with mean latency.
    fn status(&self) -> Response {
        let reg = Registry::global();
        let (queued, in_flight, _) = self.queue_depths();
        let failed = self.failed();
        let mut body = String::from("{\n  \"ok\": true,\n  \"workload\": ");
        push_json_string(&mut body, self.shared.workload.name());
        body.push_str(&format!(
            ",\n  \"artifacts\": {},\n  \"queue_depth\": {queued},\n  \"in_flight\": {in_flight},\n  \"sweep_trials\": {},\n  \"worker_restarts\": {},\n  \"failed\": [",
            self.shared.store.list().len(),
            reg.counter_value("dg_sweep_trials_total").unwrap_or(0),
            reg.counter_value("dg_serve_worker_restarts_total").unwrap_or(0),
        ));
        for (i, (fp, msg)) in failed.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\n    {{\"fingerprint\": {fp}, \"error\": "));
            push_json_string(&mut body, msg);
            body.push('}');
        }
        body.push_str(if failed.is_empty() {
            "],\n  \"requests\": ["
        } else {
            "\n  ],\n  \"requests\": ["
        });
        let mut first = true;
        for name in reg.names() {
            let Some(path) = name
                .strip_prefix("dg_http_request_seconds{path=\"")
                .and_then(|rest| rest.strip_suffix("\"}"))
            else {
                continue;
            };
            let Some(snap) = reg.histogram_snapshot(&name) else {
                continue;
            };
            body.push_str(if first { "\n    {" } else { ",\n    {" });
            first = false;
            body.push_str("\"endpoint\": ");
            push_json_string(&mut body, path);
            body.push_str(&format!(
                ", \"count\": {}, \"mean_seconds\": {}}}",
                snap.count,
                num(snap.mean()),
            ));
        }
        body.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
        Response::json(200, body)
    }

    fn list(&self) -> Response {
        let mut pending = self.pending();
        pending.sort_unstable();
        let mut body = String::from("{\n  \"artifacts\": [\n");
        let artifacts = self.shared.store.list();
        for (i, meta) in artifacts.iter().enumerate() {
            body.push_str("    ");
            push_meta(&mut body, meta);
            body.push_str(if i + 1 < artifacts.len() { ",\n" } else { "\n" });
        }
        body.push_str("  ],\n  \"pending\": [");
        for (i, fp) in pending.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&fp.to_string());
        }
        body.push_str("],\n  \"failed\": [");
        for (i, (fp, _)) in self.failed().iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&fp.to_string());
        }
        body.push_str("]\n}\n");
        Response::json(200, body)
    }

    fn artifact(&self, fp: &str, req: &Request) -> Result<Response, StoreError> {
        let Some(fingerprint) = parse_fingerprint(fp) else {
            return Ok(Response::error(400, "fingerprint must be a decimal u64"));
        };
        let Some(bytes) = self.shared.store.get_raw(fingerprint)? else {
            return Ok(self.miss(fingerprint));
        };
        if wants_csv(req) {
            let text = String::from_utf8_lossy(&bytes);
            let report = SweepReport::from_json(&text)?;
            return Ok(Response::csv(report.to_csv()));
        }
        Ok(Response::json(200, bytes))
    }

    /// A fingerprint with no stored bytes: `202` while its sweep is
    /// in flight (a job can be queued before its first checkpoint
    /// lands), `500` naming the error if its job failed for good,
    /// `404` otherwise.
    fn miss(&self, fingerprint: u64) -> Response {
        let queue = self.shared.qlock();
        if queue.pending.contains(&fingerprint) {
            pending_response(fingerprint)
        } else if let Some(msg) = queue.failed.get(&fingerprint) {
            Response::error(500, &format!("sweep failed: {msg} (re-POST to retry)"))
        } else {
            Response::error(404, "no artifact at this fingerprint")
        }
    }

    fn cell(&self, fp: &str, req: &Request) -> Result<Response, StoreError> {
        let Some(fingerprint) = parse_fingerprint(fp) else {
            return Ok(Response::error(400, "fingerprint must be a decimal u64"));
        };
        let Some(report) = self.shared.store.get(fingerprint)? else {
            return Ok(self.miss(fingerprint));
        };
        // `metric` selects which metric's statistics to serve; every
        // other query pair is an axis coordinate.
        let mut metric = 0usize;
        let mut metric_name: Option<&str> = None;
        let mut query: Vec<(&str, f64)> = Vec::with_capacity(req.query.len());
        for (name, value) in &req.query {
            if name == "metric" {
                let Some(m) = report.metric_index(value) else {
                    let declared: Vec<&str> = report
                        .metrics()
                        .map(|ms| ms.iter().map(|m| m.name()).collect())
                        .unwrap_or_default();
                    return Ok(Response::error(
                        400,
                        &format!("no metric {value:?} in this artifact (declared: {declared:?})"),
                    ));
                };
                metric = m;
                metric_name = Some(value);
                continue;
            }
            let Ok(v) = value.parse::<f64>() else {
                return Ok(Response::error(
                    400,
                    &format!("query value {value:?} for axis {name:?} is not a number"),
                ));
            };
            query.push((name.as_str(), v));
        }
        let nearest = match report.nearest_cell(&query) {
            Ok(n) => n,
            Err(SweepError::Query(msg)) => return Ok(Response::error(400, &msg)),
            Err(e) => return Err(e.into()),
        };
        let mut body = format!(
            "{{\n  \"fingerprint\": {fingerprint},\n  \"exact\": {},\n  \"distance\": {},\n  \"cell\": {{\n    \"id\": {},\n    \"coords\": {{",
            nearest.exact,
            num(Some(nearest.distance)),
            nearest.cell.id,
        );
        for (i, axis) in report.axes().iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            push_json_string(&mut body, axis.name());
            body.push_str(&format!(": {}", num(Some(nearest.cell.values[i]))));
        }
        body.push_str("},\n");
        if let Some(name) = metric_name {
            body.push_str("    \"metric\": ");
            push_json_string(&mut body, name);
            body.push_str(",\n");
        }
        let ci = nearest.cell.ci_of(metric);
        body.push_str(&format!(
            "    \"decided\": {},\n    \"trials\": {},\n    \"incomplete\": {},\n    \"mean\": {},\n    \"p95\": {},\n    \"max\": {},\n    \"ci_lo\": {},\n    \"ci_hi\": {}\n  }}\n}}\n",
            nearest.cell.decided,
            nearest.cell.trials(),
            nearest.cell.incomplete_of(metric),
            num(nearest.cell.mean_of(metric)),
            num(nearest.cell.p95_of(metric)),
            num(nearest.cell.max_of(metric)),
            num(ci.as_ref().map(|ci| ci.lo)),
            num(ci.as_ref().map(|ci| ci.hi)),
        ));
        Ok(Response::json(200, body))
    }

    fn post_sweep(&self, req: &Request) -> Result<Response, StoreError> {
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return Ok(Response::error(400, "body must be UTF-8 JSON"));
        };
        let spec = match SweepSpec::from_json(body) {
            Ok(spec) => spec,
            Err(e) => return Ok(Response::error(400, &e.to_string())),
        };
        match self.submit(spec)? {
            Submission::Complete(meta) => {
                let bytes = self
                    .shared
                    .store
                    .get_raw(meta.fingerprint)?
                    .unwrap_or_default();
                Ok(Response::json(200, bytes))
            }
            // Answer 202 directly rather than re-checking the pending
            // set — a fast sweep could already have finished, and the
            // submission outcome, not the later state, is the answer.
            Submission::Pending(fingerprint) => Ok(pending_response(fingerprint)),
            Submission::Rejected(msg) => Ok(Response::error(400, &msg)),
            Submission::Busy => Ok(Response::unavailable("sweep queue full; retry shortly")),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The route template a request resolves to — the bounded label set for
/// the per-endpoint metrics (raw paths would make label cardinality
/// unbounded).
fn endpoint(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => "GET /",
        ("GET", ["healthz"]) => "GET /healthz",
        ("GET", ["status"]) => "GET /status",
        ("GET", ["metrics"]) => "GET /metrics",
        ("GET", ["sweeps"]) => "GET /sweeps",
        ("GET", ["sweep", _]) => "GET /sweep/:fp",
        ("GET", ["sweep", _, "cell"]) => "GET /sweep/:fp/cell",
        ("POST", ["sweep"]) => "POST /sweep",
        _ => "other",
    }
}

/// Records one served request on the global registry:
/// `dg_http_requests_total{path,status}` and
/// `dg_http_request_seconds{path}`.
fn record_http(endpoint: &str, status: u16, seconds: f64) {
    let reg = Registry::global();
    reg.counter(&dg_obs::label2(
        "dg_http_requests_total",
        "path",
        endpoint,
        "status",
        &status.to_string(),
    ))
    .inc();
    reg.histogram(
        &dg_obs::label("dg_http_request_seconds", "path", endpoint),
        &dg_obs::exponential_bounds(1e-4, 10.0, 6),
    )
    .observe(seconds);
}

fn worker_loop(shared: &Shared) {
    loop {
        let spec = {
            let mut queue = shared.qlock();
            loop {
                if queue.shutdown {
                    return;
                }
                if let Some(spec) = queue.jobs.pop_front() {
                    break spec;
                }
                queue = shared.wake.wait(queue).unwrap_or_else(|p| p.into_inner());
            }
        };
        let fingerprint = spec.fingerprint();
        dg_debug!("dg-serve: sweep {fingerprint} started");
        let t0 = Instant::now();
        // AssertUnwindSafe: the job's only shared state is the store
        // (atomic on-disk writes, poison-recovering index) and the
        // sweep's own checkpoint file — a caught panic leaves nothing a
        // requeued re-run cannot reconcile from disk.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            dg_fault::fail_point("daemon.worker.crash");
            let sweep = spec
                .sweep()
                .on_trial_panic(TrialPanic::Retry { max: 2 })
                .checkpoint(shared.store.path_for(fingerprint));
            match spec.metrics() {
                Some(metrics) => {
                    sweep.run_metrics(shared.workload.metric_trial_fn(metrics.to_vec()))
                }
                None => sweep.run(shared.workload.trial_fn()),
            }
        }));
        match outcome {
            Ok(Ok(_)) => {
                dg_info!(
                    "dg-serve: sweep {fingerprint} finished in {:.1}s",
                    t0.elapsed().as_secs_f64()
                );
                if let Err(e) = shared.store.refresh(fingerprint) {
                    dg_error!("dg-serve: indexing sweep {fingerprint} failed: {e}");
                }
                let mut queue = shared.qlock();
                queue.attempts.remove(&fingerprint);
                queue.pending.remove(&fingerprint);
                shared.done.notify_all();
            }
            Ok(Err(e)) => {
                // A checkpoint that stopped parsing is mid-run disk
                // corruption: quarantine it so the retry starts from a
                // clean slate instead of re-reading the same garbage.
                if matches!(&e, SweepError::Parse(_) | SweepError::Mismatch(_)) {
                    match shared.store.quarantine_fingerprint(fingerprint) {
                        Ok(true) => {
                            dg_error!("dg-serve: quarantined corrupt checkpoint {fingerprint}")
                        }
                        Ok(false) => {}
                        Err(qe) => dg_error!("dg-serve: quarantining {fingerprint} failed: {qe}"),
                    }
                } else if let Err(re) = shared.store.refresh(fingerprint) {
                    dg_error!("dg-serve: indexing sweep {fingerprint} failed: {re}");
                }
                requeue_or_fail(shared, spec, fingerprint, e.to_string());
            }
            Err(payload) => {
                // Index whatever checkpoint survived the crash; the
                // requeued run resumes from it.
                if let Err(re) = shared.store.refresh(fingerprint) {
                    dg_error!("dg-serve: indexing sweep {fingerprint} failed: {re}");
                }
                requeue_or_fail(shared, spec, fingerprint, panic_message(payload.as_ref()));
            }
        }
    }
}

/// After a failed job start: requeue under the attempt bound (counted
/// as `dg_serve_worker_restarts_total`), or mark the fingerprint
/// failed and release its waiters.
fn requeue_or_fail(shared: &Shared, spec: SweepSpec, fingerprint: u64, msg: String) {
    let mut queue = shared.qlock();
    let attempts = *queue
        .attempts
        .entry(fingerprint)
        .and_modify(|a| *a += 1)
        .or_insert(1);
    if attempts < shared.config.max_job_attempts {
        dg_error!(
            "dg-serve: sweep {fingerprint} attempt {attempts}/{} failed ({msg}); requeueing",
            shared.config.max_job_attempts
        );
        Registry::global()
            .counter("dg_serve_worker_restarts_total")
            .inc();
        queue.jobs.push_back(spec);
        shared.wake.notify_one();
    } else {
        dg_error!("dg-serve: sweep {fingerprint} failed for good after {attempts} attempts: {msg}");
        queue.attempts.remove(&fingerprint);
        queue.pending.remove(&fingerprint);
        queue.failed.insert(fingerprint, msg);
        shared.done.notify_all();
    }
}

/// Renders a caught panic payload for the failed map / logs.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

fn parse_fingerprint(s: &str) -> Option<u64> {
    s.parse().ok()
}

fn pending_response(fingerprint: u64) -> Response {
    Response::json(
        202,
        format!(
            "{{\"status\": \"pending\", \"fingerprint\": {fingerprint}, \"url\": \"/sweep/{fingerprint}\"}}\n"
        ),
    )
}

/// `text/csv` via `?format=csv` or an `Accept` preferring CSV.
fn wants_csv(req: &Request) -> bool {
    match req.query_param("format") {
        Some("csv") => true,
        Some(_) => false,
        None => req.header("accept").is_some_and(|a| a.contains("text/csv")),
    }
}

/// A JSON number for a statistic: `null` when absent or non-finite.
fn num(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    }
}

fn push_meta(body: &mut String, meta: &ArtifactMeta) {
    body.push_str(&format!(
        "{{\"fingerprint\": {}, \"complete\": {}, \"cells\": {}, \"decided_cells\": {}, \"total_trials\": {}, \"axes\": [",
        meta.fingerprint, meta.complete, meta.cells, meta.decided_cells, meta.total_trials
    ));
    for (i, (name, len)) in meta.axes.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str("{\"name\": ");
        push_json_string(body, name);
        body.push_str(&format!(", \"len\": {len}}}"));
    }
    body.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sweep::{Axis, TrialBudget};
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("dg_serve_daemon_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn daemon(root: &PathBuf) -> Daemon {
        Daemon::start(ArtifactStore::open(root).unwrap(), Workload::synthetic(), 2).unwrap()
    }

    fn spec(seed: u64) -> SweepSpec {
        SweepSpec::new(
            vec![Axis::ints("x", [1, 2, 3])],
            seed,
            TrialBudget::fixed(3),
        )
    }

    fn get(daemon: &Daemon, target: &str) -> Response {
        let (path, query_str) = target.split_once('?').unwrap_or((target, ""));
        let query = query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| {
                let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                (k.to_string(), v.to_string())
            })
            .collect();
        daemon.handle(&Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query,
            headers: vec![],
            body: vec![],
        })
    }

    fn post(daemon: &Daemon, body: &str) -> Response {
        daemon.handle(&Request {
            method: "POST".to_string(),
            path: "/sweep".to_string(),
            query: vec![],
            headers: vec![],
            body: body.as_bytes().to_vec(),
        })
    }

    #[test]
    fn miss_then_hit_serves_identical_bytes_to_direct_run() {
        let root = tmp_root("miss_hit");
        let d = daemon(&root);
        let s = spec(5);
        let posted = post(&d, &s.to_json());
        assert_eq!(posted.status, 202, "{:?}", String::from_utf8(posted.body));
        assert!(d.wait_idle(Duration::from_secs(30)));
        let served = get(&d, &format!("/sweep/{}", s.fingerprint()));
        assert_eq!(served.status, 200);
        let direct = s.sweep().run(Workload::synthetic().trial_fn()).unwrap();
        assert_eq!(served.body, direct.to_json().into_bytes());
        // Second post: cache hit, same bytes, no new job.
        let again = post(&d, &s.to_json());
        assert_eq!(again.status, 200);
        assert_eq!(again.body, served.body);
        assert!(d.pending().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn routes_and_errors() {
        let root = tmp_root("routes");
        let d = daemon(&root);
        assert_eq!(get(&d, "/healthz").status, 200);
        assert_eq!(get(&d, "/sweeps").status, 200);
        assert_eq!(get(&d, "/nope").status, 404);
        assert_eq!(get(&d, "/sweep/notanumber").status, 400);
        assert_eq!(get(&d, "/sweep/12345").status, 404);
        assert_eq!(post(&d, "{ not json").status, 400);
        // Valid JSON, malformed spec.
        assert_eq!(
            post(&d, "{\"axes\": [{\"name\": \"x\", \"values\": []}]}").status,
            400
        );
        let wrong_method = d.handle(&Request {
            method: "DELETE".to_string(),
            path: "/sweeps".to_string(),
            query: vec![],
            headers: vec![],
            body: vec![],
        });
        assert_eq!(wrong_method.status, 405);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn csv_and_cell_queries_serve_summaries() {
        let root = tmp_root("csv_cell");
        let d = daemon(&root);
        let s = spec(7);
        let report = s.sweep().run(Workload::synthetic().trial_fn()).unwrap();
        d.store().put(&report).unwrap();
        let fp = s.fingerprint();
        let csv = get(&d, &format!("/sweep/{fp}?format=csv"));
        assert_eq!(csv.status, 200);
        assert_eq!(csv.body, report.to_csv().into_bytes());
        // Exact cell.
        let exact = get(&d, &format!("/sweep/{fp}/cell?x=2"));
        assert_eq!(exact.status, 200);
        let body = String::from_utf8(exact.body).unwrap();
        assert!(body.contains("\"exact\": true"), "{body}");
        assert!(body.contains("\"x\": 2"), "{body}");
        // Nearest cell.
        let near = get(&d, &format!("/sweep/{fp}/cell?x=2.4"));
        let body = String::from_utf8(near.body).unwrap();
        assert!(body.contains("\"exact\": false"), "{body}");
        assert!(body.contains("\"x\": 2"), "{body}");
        // Bad queries are 400s with the validator's message.
        assert_eq!(get(&d, &format!("/sweep/{fp}/cell?y=1")).status, 400);
        assert_eq!(get(&d, &format!("/sweep/{fp}/cell?x=abc")).status, 400);
        let _ = std::fs::remove_dir_all(&root);
    }

    fn metric_spec(seed: u64) -> SweepSpec {
        spec(seed).with_metrics(vec![
            dg_sweep::Metric::new("value"),
            dg_sweep::Metric::observe("aux"),
        ])
    }

    #[test]
    fn multi_metric_specs_run_and_serve_identical_bytes() {
        let root = tmp_root("v2_miss_hit");
        let d = daemon(&root);
        let s = metric_spec(17);
        // v1 and v2 of the same grid are distinct artifacts.
        assert_ne!(s.fingerprint(), spec(17).fingerprint());
        let posted = post(&d, &s.to_json());
        assert_eq!(posted.status, 202, "{:?}", String::from_utf8(posted.body));
        assert!(d.wait_idle(Duration::from_secs(30)));
        let served = get(&d, &format!("/sweep/{}", s.fingerprint()));
        assert_eq!(served.status, 200);
        let w = Workload::synthetic();
        let direct = s
            .sweep()
            .run_metrics(w.metric_trial_fn(s.metrics().unwrap().to_vec()))
            .unwrap();
        assert_eq!(served.body, direct.to_json().into_bytes());
        // The CSV view carries per-metric column groups.
        let csv = get(&d, &format!("/sweep/{}?format=csv", s.fingerprint()));
        let text = String::from_utf8(csv.body).unwrap();
        assert!(text.starts_with("x,trials,value_incomplete,"), "{text}");
        assert!(text.contains("aux_mean"), "{text}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cell_queries_select_metrics() {
        let root = tmp_root("cell_metric");
        let d = daemon(&root);
        let s = metric_spec(19);
        let w = Workload::synthetic();
        let metrics = s.metrics().unwrap().to_vec();
        let report = s.sweep().run_metrics(w.metric_trial_fn(metrics)).unwrap();
        d.store().put(&report).unwrap();
        let fp = s.fingerprint();
        // Default: metric 0.
        let base = get(&d, &format!("/sweep/{fp}/cell?x=2"));
        assert_eq!(base.status, 200);
        let base = String::from_utf8(base.body).unwrap();
        assert!(!base.contains("\"metric\""), "{base}");
        // ?metric=aux serves the second metric's statistics.
        let aux = get(&d, &format!("/sweep/{fp}/cell?x=2&metric=aux"));
        assert_eq!(aux.status, 200, "{aux:?}");
        let aux = String::from_utf8(aux.body).unwrap();
        assert!(aux.contains("\"metric\": \"aux\""), "{aux}");
        let mean_of = |body: &str| {
            let tail = &body[body.find("\"mean\": ").unwrap() + 8..];
            tail[..tail.find(',').unwrap()].parse::<f64>().unwrap()
        };
        assert_eq!(mean_of(&aux), report.cell(1).mean_of(1).unwrap(), "{aux}");
        assert_ne!(mean_of(&aux), mean_of(&base));
        // Unknown metric names are 400s naming the declared ones.
        let bad = get(&d, &format!("/sweep/{fp}/cell?x=2&metric=latency"));
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8(bad.body).unwrap().contains("value"));
        // ...and ?metric= on a metric-less artifact is a 400, not a 500.
        let v1 = spec(19);
        let v1_report = v1.sweep().run(w.trial_fn()).unwrap();
        d.store().put(&v1_report).unwrap();
        let v1_bad = get(
            &d,
            &format!("/sweep/{}/cell?x=2&metric=value", v1.fingerprint()),
        );
        assert_eq!(v1_bad.status, 400);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn metrics_and_status_expose_telemetry() {
        let root = tmp_root("telemetry");
        let d = daemon(&root);
        let s = spec(23);
        assert_eq!(post(&d, &s.to_json()).status, 202);
        assert!(d.wait_idle(Duration::from_secs(30)));
        assert_eq!(get(&d, &format!("/sweep/{}", s.fingerprint())).status, 200);
        // /metrics: well-formed Prometheus exposition with request,
        // store, and sweep families.
        let metrics = get(&d, "/metrics");
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(
            text.contains("# TYPE dg_http_requests_total counter"),
            "{text}"
        );
        // Series presence only: the registry is process-global, so
        // exact counts depend on which tests ran before this one.
        assert!(
            text.contains("dg_http_requests_total{path=\"POST /sweep\",status=\"202\"}"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE dg_http_request_seconds histogram"),
            "{text}"
        );
        assert!(text.contains("dg_serve_artifacts 1"), "{text}");
        assert!(text.contains("dg_serve_queue_depth 0"), "{text}");
        assert!(
            text.contains("# TYPE dg_sweep_trials_total counter"),
            "{text}"
        );
        // /status: the JSON view carries queue depths and per-endpoint
        // request statistics.
        let status = get(&d, "/status");
        assert_eq!(status.status, 200);
        let body = String::from_utf8(status.body).unwrap();
        assert!(body.contains("\"queue_depth\": 0"), "{body}");
        assert!(body.contains("\"in_flight\": 0"), "{body}");
        assert!(body.contains("\"artifacts\": 1"), "{body}");
        assert!(body.contains("\"endpoint\": \"POST /sweep\""), "{body}");
        assert!(body.contains("\"endpoint\": \"GET /sweep/:fp\""), "{body}");
        // Wrong methods on the new paths are 405s, not 404s.
        let wrong = d.handle(&Request {
            method: "POST".to_string(),
            path: "/metrics".to_string(),
            query: vec![],
            headers: vec![],
            body: vec![],
        });
        assert_eq!(wrong.status, 405);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restart_resumes_incomplete_artifacts() {
        let root = tmp_root("resume");
        let s = spec(11);
        let fp = s.fingerprint();
        // Fabricate a crash: run the sweep under a tight run_budget so
        // its checkpoint is a genuine partial artifact, as a kill
        // mid-sweep would leave.
        {
            let store = ArtifactStore::open(&root).unwrap();
            let partial = s
                .sweep()
                .run_budget(2)
                .checkpoint(store.path_for(fp))
                .run(Workload::synthetic().trial_fn())
                .unwrap();
            assert!(!partial.is_complete());
        }
        // A fresh daemon over the same root finds and finishes it.
        let d = daemon(&root);
        assert!(d.wait_idle(Duration::from_secs(30)));
        let meta = d.store().meta(fp).unwrap();
        assert!(meta.complete);
        let direct = s.sweep().run(Workload::synthetic().trial_fn()).unwrap();
        assert_eq!(
            d.store().get_raw(fp).unwrap().unwrap(),
            direct.to_json().into_bytes()
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_capacity_queue_sheds_posts_with_503_retry_after() {
        let root = tmp_root("busy");
        let d = Daemon::start_with(
            ArtifactStore::open(&root).unwrap(),
            Workload::synthetic(),
            DaemonConfig {
                workers: 1,
                max_queue: 0,
                ..DaemonConfig::default()
            },
        )
        .unwrap();
        let shed = post(&d, &spec(31).to_json());
        assert_eq!(shed.status, 503);
        assert_eq!(shed.retry_after, Some(1));
        let body = String::from_utf8(shed.body).unwrap();
        assert!(body.contains("queue full"), "{body}");
        assert!(d.pending().is_empty());
        // Cache hits are still served: the bound sheds *work*, not reads.
        let s = spec(33);
        let report = s.sweep().run(Workload::synthetic().trial_fn()).unwrap();
        d.store().put(&report).unwrap();
        assert_eq!(post(&d, &s.to_json()).status, 200);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_submissions_deduplicate() {
        let root = tmp_root("dedup");
        let d = daemon(&root);
        let s = spec(13);
        for _ in 0..5 {
            let r = post(&d, &s.to_json());
            assert!(r.status == 202 || r.status == 200);
        }
        assert!(d.wait_idle(Duration::from_secs(30)));
        assert_eq!(d.store().list().len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
