//! Property tests for the store's concurrency contract: putting the
//! same artifact from many threads at once is idempotent — every
//! interleaving leaves exactly the bytes a single put would have, and
//! an index that agrees with the disk.

use std::path::PathBuf;
use std::sync::Arc;

use dg_serve::ArtifactStore;
use dg_sweep::{Axis, SweepSpec, TrialBudget};
use proptest::prelude::*;

fn tmp_root(tag: u64) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dg_serve_props_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn report_for(seed: u64, cells: usize, trials: usize) -> dg_sweep::SweepReport {
    SweepSpec::new(
        vec![Axis::ints("x", 1..=cells)],
        seed,
        TrialBudget::fixed(trials),
    )
    .sweep()
    .run(|cell, trial| Some(cell.get("x") * 10.0 + (trial.seed % 5) as f64))
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn concurrent_double_put_is_idempotent(
        seed in 0u64..1_000_000,
        cells in 1usize..5,
        trials in 1usize..4,
        writers in 2usize..6,
    ) {
        let report = Arc::new(report_for(seed, cells, trials));
        let expected = report.to_json().into_bytes();
        let root = tmp_root(seed ^ (writers as u64) << 32);
        let store = Arc::new(ArtifactStore::open(&root).unwrap());

        std::thread::scope(|scope| {
            for _ in 0..writers {
                let store = Arc::clone(&store);
                let report = Arc::clone(&report);
                scope.spawn(move || store.put(&report).unwrap());
            }
        });

        let fp = report.fingerprint();
        prop_assert_eq!(store.get_raw(fp).unwrap().unwrap(), expected.clone());
        prop_assert_eq!(store.list().len(), 1);
        // No temporary droppings survive the race.
        let leftovers: Vec<_> = std::fs::read_dir(root.join("store"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        prop_assert!(leftovers.is_empty(), "{leftovers:?}");
        // A reopen scan agrees with the in-memory index.
        let reopened = ArtifactStore::open(&root).unwrap();
        prop_assert_eq!(reopened.get_raw(fp).unwrap().unwrap(), expected);
        prop_assert_eq!(reopened.list(), store.list());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_puts_of_distinct_artifacts_all_land(
        seed in 0u64..1_000_000,
        count in 2usize..5,
    ) {
        let reports: Vec<_> = (0..count as u64)
            .map(|i| Arc::new(report_for(seed.wrapping_add(i), 2, 2)))
            .collect();
        let root = tmp_root(seed ^ 0xABCD_0000);
        let store = Arc::new(ArtifactStore::open(&root).unwrap());
        std::thread::scope(|scope| {
            for report in &reports {
                let store = Arc::clone(&store);
                let report = Arc::clone(report);
                scope.spawn(move || store.put(&report).unwrap());
            }
        });
        prop_assert_eq!(store.list().len(), count);
        for report in &reports {
            prop_assert_eq!(
                store.get_raw(report.fingerprint()).unwrap().unwrap(),
                report.to_json().into_bytes()
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
