//! End-to-end tests over real TCP sockets: the in-process daemon
//! behind `http::serve`, and the `dg-serve` binary itself — including
//! a SIGKILL mid-sweep followed by a restart that must converge to the
//! byte-identical artifact.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dg_serve::{http, ArtifactStore, Daemon, Workload};
use dg_sweep::{Axis, SweepSpec, TrialBudget};

fn tmp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dg_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Polls `GET /sweep/<fp>` until the served artifact reports
/// `"complete": true`, returning its bytes.
fn poll_complete(addr: SocketAddr, fingerprint: u64, deadline: Duration) -> Vec<u8> {
    let start = Instant::now();
    loop {
        if let Ok((200, body)) = http::request(addr, "GET", &format!("/sweep/{fingerprint}"), b"") {
            if String::from_utf8_lossy(&body).contains("\"complete\": true") {
                return body;
            }
        }
        assert!(
            start.elapsed() < deadline,
            "sweep {fingerprint} not complete after {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn tcp_cache_miss_runs_sweep_and_serves_byte_identical_artifact() {
    let root = tmp_root("tcp");
    let store = ArtifactStore::open(&root).unwrap();
    let daemon = Arc::new(Daemon::start(store, Workload::synthetic(), 2).unwrap());
    let handler = Arc::clone(&daemon);
    let server = http::serve("127.0.0.1:0", move |req| handler.handle(req)).unwrap();
    let addr = server.addr();

    let spec = SweepSpec::new(
        vec![Axis::ints("x", [1, 2, 3]), Axis::explicit("y", [0.5, 1.5])],
        0xE2E,
        TrialBudget::fixed(4),
    );
    let fp = spec.fingerprint();

    // Unknown fingerprint: 404 before anything is posted.
    let (status, _) = http::request(addr, "GET", &format!("/sweep/{fp}"), b"").unwrap();
    assert_eq!(status, 404);

    // Cache miss: accepted for background execution.
    let (status, body) = http::request(addr, "POST", "/sweep", spec.to_json().as_bytes()).unwrap();
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains(&fp.to_string()));

    // The served artifact equals a direct Sweep run, byte for byte.
    let served = poll_complete(addr, fp, Duration::from_secs(60));
    let direct = spec.sweep().run(Workload::synthetic().trial_fn()).unwrap();
    assert_eq!(served, direct.to_json().into_bytes());

    // Re-posting is now a cache hit with the same bytes.
    let (status, body) = http::request(addr, "POST", "/sweep", spec.to_json().as_bytes()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, served);

    // CSV view and cell queries over the same socket.
    let (status, csv) =
        http::request(addr, "GET", &format!("/sweep/{fp}?format=csv"), b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(csv, direct.to_csv().into_bytes());
    let (status, cell) =
        http::request(addr, "GET", &format!("/sweep/{fp}/cell?x=2&y=0.6"), b"").unwrap();
    assert_eq!(status, 200);
    let cell = String::from_utf8(cell).unwrap();
    assert!(cell.contains("\"exact\": false"), "{cell}");
    assert!(
        cell.contains("\"x\": 2") && cell.contains("\"y\": 0.5"),
        "{cell}"
    );

    // The index lists it as a complete artifact.
    let (status, listing) = http::request(addr, "GET", "/sweeps", b"").unwrap();
    assert_eq!(status, 200);
    let listing = String::from_utf8(listing).unwrap();
    assert!(
        listing.contains(&format!("\"fingerprint\": {fp}, \"complete\": true")),
        "{listing}"
    );

    server.shutdown();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Kills the child on drop so a failing test never leaks a daemon.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns the real `dg-serve` binary over `root` and waits for its
/// address file.
fn spawn_daemon(root: &Path) -> (KillOnDrop, SocketAddr) {
    let addr_file = root.join("dg-serve.addr");
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_dg-serve"))
        .args(["--root", root.to_str().unwrap(), "--workload", "synthetic"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dg-serve");
    let child = KillOnDrop(child);
    let start = Instant::now();
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                break addr;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "dg-serve never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

#[test]
fn sigkill_mid_sweep_then_restart_converges_to_identical_bytes() {
    let root = tmp_root("sigkill");
    std::fs::create_dir_all(&root).unwrap();

    // A grid big enough that checkpoints land while the sweep is still
    // running, giving the kill something to interrupt.
    let spec = SweepSpec::new(
        vec![Axis::ints("x", 1..=300)],
        0xDEAD,
        TrialBudget::fixed(40),
    );
    let fp = spec.fingerprint();
    let artifact = root.join("store").join(format!("{fp}.json"));

    {
        let (child, addr) = spawn_daemon(&root);
        let (status, _) = http::request(addr, "POST", "/sweep", spec.to_json().as_bytes()).unwrap();
        assert_eq!(status, 202);
        // SIGKILL as soon as the first checkpoint reaches the store.
        // (If the sweep finished before we fired, the test still proves
        // restart convergence — just without interrupting anything.)
        let start = Instant::now();
        while !artifact.exists() && start.elapsed() < Duration::from_secs(60) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(artifact.exists(), "no checkpoint ever appeared");
        drop(child); // SIGKILL — no graceful shutdown path runs.
    }

    // Restart over the same root: the store scan finds the incomplete
    // artifact and the daemon resumes it without being asked.
    let (child, addr) = spawn_daemon(&root);
    let served = poll_complete(addr, fp, Duration::from_secs(120));
    let direct = spec.sweep().run(Workload::synthetic().trial_fn()).unwrap();
    assert_eq!(
        served,
        direct.to_json().into_bytes(),
        "resumed artifact differs from an uninterrupted run"
    );
    drop(child);
    let _ = std::fs::remove_dir_all(&root);
}
