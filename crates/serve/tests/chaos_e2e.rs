//! Chaos end-to-end tests over real TCP: the daemon under injected
//! worker crashes, the bounded accept loop shedding load, and the
//! binary's graceful SIGTERM drain.
//!
//! The `dg-fault` plan is process-global, so every test that arms one
//! (or starts a daemon that could observe one) serialises on
//! [`CHAOS_LOCK`]. All plans use deterministic `always` rules — the
//! suite never rolls dice.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dg_fault::FaultPlan;
use dg_serve::{http, ArtifactStore, Daemon, DaemonConfig, Workload};
use dg_sweep::{Axis, SweepSpec, TrialBudget};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dg_serve_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn spec(seed: u64) -> SweepSpec {
    SweepSpec::new(
        vec![Axis::ints("x", [1, 2, 3])],
        seed,
        TrialBudget::fixed(3),
    )
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let (status, body) = http::request(addr, "GET", target, b"").unwrap();
    (status, String::from_utf8_lossy(&body).into_owned())
}

#[test]
fn worker_crash_requeues_and_serves_fault_free_bytes() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let root = tmp_root("crash_requeue");
    let daemon = Arc::new(
        Daemon::start(
            ArtifactStore::open(&root).unwrap(),
            Workload::synthetic(),
            2,
        )
        .unwrap(),
    );
    let handler = Arc::clone(&daemon);
    let server = http::serve("127.0.0.1:0", move |req| handler.handle(req)).unwrap();
    let addr = server.addr();

    // The first job start panics; the requeued start runs clean.
    let _plan = dg_fault::scoped(FaultPlan::new(0).always("daemon.worker.crash", 1));
    let s = spec(0xC4A5);
    let (status, _) = http::request(addr, "POST", "/sweep", s.to_json().as_bytes()).unwrap();
    assert_eq!(status, 202);
    assert!(daemon.wait_idle(Duration::from_secs(60)));
    assert!(
        daemon.failed().is_empty(),
        "one crash must not fail the job"
    );

    let (status, body) = get(addr, &format!("/sweep/{}", s.fingerprint()));
    assert_eq!(status, 200);
    let direct = s.sweep().run(Workload::synthetic().trial_fn()).unwrap();
    assert_eq!(body.into_bytes(), direct.to_json().into_bytes());

    // The crash is visible in telemetry: the injection counter and the
    // restart counter both moved.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("dg_fault_injected_total{site=\"daemon.worker.crash\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dg_serve_worker_restarts_total"),
        "{metrics}"
    );
    let (_, status_body) = get(addr, "/status");
    assert!(
        status_body.contains("\"worker_restarts\": "),
        "{status_body}"
    );

    server.shutdown();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn exhausted_attempts_surface_failed_state_and_resubmit_clears_it() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let root = tmp_root("failed_state");
    let daemon = Arc::new(
        Daemon::start_with(
            ArtifactStore::open(&root).unwrap(),
            Workload::synthetic(),
            DaemonConfig {
                workers: 1,
                max_job_attempts: 2,
                ..DaemonConfig::default()
            },
        )
        .unwrap(),
    );
    let handler = Arc::clone(&daemon);
    let server = http::serve("127.0.0.1:0", move |req| handler.handle(req)).unwrap();
    let addr = server.addr();
    let s = spec(0xFA11);
    let fp = s.fingerprint();

    {
        // Every start crashes: both attempts burn, the job fails for good.
        let _plan = dg_fault::scoped(FaultPlan::new(0).always("daemon.worker.crash", 64));
        let (status, _) = http::request(addr, "POST", "/sweep", s.to_json().as_bytes()).unwrap();
        assert_eq!(status, 202);
        assert!(daemon.wait_idle(Duration::from_secs(60)));
        assert_eq!(daemon.failed().len(), 1);
        assert_eq!(daemon.failed()[0].0, fp);

        // The failure is surfaced everywhere an operator would look.
        let (status, body) = get(addr, &format!("/sweep/{fp}"));
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("injected fault"), "{body}");
        let (_, sweeps) = get(addr, "/sweeps");
        assert!(sweeps.contains(&format!("\"failed\": [{fp}]")), "{sweeps}");
        let (_, st) = get(addr, "/status");
        assert!(st.contains(&format!("\"fingerprint\": {fp}")), "{st}");
    }

    // Plan disarmed: re-POSTing clears the failure and succeeds.
    let (status, _) = http::request(addr, "POST", "/sweep", s.to_json().as_bytes()).unwrap();
    assert_eq!(status, 202);
    assert!(daemon.wait_idle(Duration::from_secs(60)));
    assert!(daemon.failed().is_empty());
    let (status, body) = get(addr, &format!("/sweep/{fp}"));
    assert_eq!(status, 200);
    let direct = s.sweep().run(Workload::synthetic().trial_fn()).unwrap();
    assert_eq!(body.into_bytes(), direct.to_json().into_bytes());

    server.shutdown();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stalled_handler_saturates_cap_and_second_connection_gets_503() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let root = tmp_root("conn_cap");
    let daemon = Arc::new(
        Daemon::start(
            ArtifactStore::open(&root).unwrap(),
            Workload::synthetic(),
            1,
        )
        .unwrap(),
    );
    let handler = Arc::clone(&daemon);
    let server = http::serve_with("127.0.0.1:0", move |req| handler.handle(req), 1).unwrap();
    let addr = server.addr();

    // The first connection's handler stalls (holding the only slot);
    // the second arrives inside the stall window and is shed.
    let _plan = dg_fault::scoped(FaultPlan::new(0).always("http.conn.stall", 1));
    let mut stalled = TcpStream::connect(addr).unwrap();
    write!(stalled, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the accept land
    let mut shed = TcpStream::connect(addr).unwrap();
    write!(shed, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut out = String::new();
    shed.read_to_string(&mut out).unwrap();
    assert!(
        out.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
        "{out}"
    );
    assert!(out.contains("\r\nRetry-After: 1\r\n"), "{out}");

    // The stalled connection is served once its nap ends...
    let mut out = String::new();
    stalled.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
    // ...and with the slot free, requests flow again.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    server.shutdown();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sigterm_drains_gracefully_and_removes_addr_file() {
    let root = tmp_root("sigterm");
    std::fs::create_dir_all(&root).unwrap();
    let addr_file = root.join("dg-serve.addr");
    let mut child = Command::new(env!("CARGO_BIN_EXE_dg-serve"))
        .args(["--root", root.to_str().unwrap(), "--workload", "synthetic"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dg-serve");
    let addr = wait_for_addr(&addr_file);

    // Work lands and completes before the drain.
    let s = spec(0x516);
    let (status, _) = http::request(addr, "POST", "/sweep", s.to_json().as_bytes()).unwrap();
    assert_eq!(status, 202);
    let start = Instant::now();
    loop {
        let (status, body) = get(addr, &format!("/sweep/{}", s.fingerprint()));
        if status == 200 && body.contains("\"complete\": true") {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "sweep never finished"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // `Child::kill` is SIGKILL; the graceful path needs a real SIGTERM.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(term.success());
    let start = Instant::now();
    let exit = loop {
        if let Some(exit) = child.try_wait().expect("try_wait") {
            break exit;
        }
        if start.elapsed() > Duration::from_secs(30) {
            let _ = child.kill();
            panic!("dg-serve did not exit after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(exit.success(), "graceful drain must exit 0, got {exit:?}");
    assert!(!addr_file.exists(), "drain must remove the addr file");
    let _ = std::fs::remove_dir_all(&root);
}

fn wait_for_addr(addr_file: &Path) -> SocketAddr {
    let start = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                return addr;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "dg-serve never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
