//! Property tests for the graph substrate: generator invariants, CSR
//! well-formedness, and metric consistency.

use proptest::prelude::*;

use dg_graph::{generators, metrics, traversal, Graph, GraphBuilder};

fn check_csr(g: &Graph) {
    let mut degree_sum = 0;
    for u in g.nodes() {
        let neigh = g.neighbors(u);
        degree_sum += neigh.len();
        assert!(neigh.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for &v in neigh {
            assert_ne!(v, u, "no self-loops");
            assert!(g.has_edge(v, u), "symmetric");
        }
    }
    assert_eq!(degree_sum, 2 * g.edge_count());
    assert_eq!(g.edges().count(), g.edge_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_arbitrary_edges_well_formed(
        n in 1usize..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..80),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            // Errors are fine; the build must still be consistent.
            let _ = b.add_edge(u % n as u32, v % n as u32);
        }
        let g = b.build();
        check_csr(&g);
    }

    #[test]
    fn grid_metrics(rows in 1usize..8, cols in 1usize..8) {
        let g = generators::grid(rows, cols);
        check_csr(&g);
        prop_assert_eq!(g.node_count(), rows * cols);
        // Edge count: horizontal + vertical.
        prop_assert_eq!(
            g.edge_count(),
            rows * (cols - 1) + cols * (rows - 1)
        );
        prop_assert!(traversal::is_connected(&g));
        prop_assert_eq!(metrics::diameter(&g), Some((rows - 1 + cols - 1) as u32));
    }

    #[test]
    fn torus_regular_and_connected(rows in 3usize..8, cols in 3usize..8) {
        let g = generators::torus(rows, cols);
        check_csr(&g);
        let stats = metrics::degree_stats(&g).unwrap();
        prop_assert_eq!(stats.min, 4);
        prop_assert_eq!(stats.max, 4);
        prop_assert!(traversal::is_connected(&g));
    }

    #[test]
    fn k_augmented_degree_bounds(m in 3usize..8, k in 1usize..4) {
        let g = generators::k_augmented_grid(m, m, k);
        check_csr(&g);
        // Interior nodes have the full Manhattan ball of 2k(k+1) points;
        // no node exceeds it.
        let ball = 2 * k * (k + 1);
        let stats = metrics::degree_stats(&g).unwrap();
        prop_assert!(stats.max <= ball);
        if m > 2 * k {
            prop_assert_eq!(stats.max, ball);
        }
        // Augmentation only shrinks the diameter.
        let d1 = metrics::diameter(&generators::grid(m, m)).unwrap();
        let dk = metrics::diameter(&g).unwrap();
        prop_assert!(dk <= d1);
        // Diameter of the k-augmented grid is ceil(diameter / k).
        prop_assert_eq!(dk, d1.div_ceil(k as u32));
    }

    #[test]
    fn bfs_distances_are_metric(n in 2usize..30, extra in 0usize..40, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        // Random connected graph: a path plus random chords.
        let mut b = GraphBuilder::new(n);
        for u in 1..n as u32 {
            b.add_edge(u - 1, u).unwrap();
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..extra {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let from0 = traversal::bfs_distances(&g, 0);
        prop_assert_eq!(from0[0], 0);
        // Triangle inequality along edges: |d(u) - d(v)| <= 1.
        for (u, v) in g.edges() {
            let du = from0[u as usize] as i64;
            let dv = from0[v as usize] as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
        // Symmetry: d(0, x) == d(x, 0).
        let x = (n - 1) as u32;
        let from_x = traversal::bfs_distances(&g, x);
        prop_assert_eq!(from0[x as usize], from_x[0]);
    }

    #[test]
    fn components_partition_nodes(
        n in 1usize..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..40),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            let _ = b.add_edge(u % n as u32, v % n as u32);
        }
        let g = b.build();
        let (labels, count) = traversal::connected_components(&g);
        prop_assert_eq!(labels.len(), n);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        // Every edge joins same-component endpoints.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Largest component size is consistent.
        let largest = traversal::largest_component_size(&g);
        prop_assert!(largest <= n);
        prop_assert!(count == 0 || largest >= n / count);
    }

    #[test]
    fn double_sweep_lower_bounds_diameter(
        n in 2usize..24,
        extra in 0usize..30,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut b = GraphBuilder::new(n);
        for u in 1..n as u32 {
            b.add_edge(u - 1, u).unwrap();
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..extra {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let exact = metrics::diameter(&g).unwrap();
        let sweep = metrics::diameter_double_sweep(&g).unwrap();
        prop_assert!(sweep <= exact);
    }
}
