//! Breadth-first traversal: distances and connected components.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Marker distance for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `src` to every node ([`UNREACHABLE`] when no path
/// exists).
///
/// # Examples
///
/// ```
/// use dg_graph::{generators, traversal};
///
/// let g = generators::path(4);
/// let d = traversal::bfs_distances(&g, 0);
/// assert_eq!(d, vec![0, 1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    assert!((src as usize) < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components: `(labels, component_count)` where `labels[u]` is a
/// dense component id in `0..component_count`.
///
/// # Examples
///
/// ```
/// use dg_graph::{GraphBuilder, traversal};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).unwrap();
/// let g = b.build();
/// let (labels, count) = traversal::connected_components(&g);
/// assert_eq!(count, 3);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// `true` if the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() == 0 || connected_components(g).1 == 1
}

/// Size of the largest connected component (0 for the empty graph).
pub fn largest_component_size(g: &Graph) -> usize {
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn distances_on_cycle() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_marked() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn component_counting() {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (3, 4)]).unwrap();
        let g = b.build();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::grid(4, 4)));
        assert!(is_connected(&GraphBuilder::new(0).build()));
        assert!(!is_connected(&GraphBuilder::new(2).build()));
        assert!(is_connected(&GraphBuilder::new(1).build()));
    }
}
