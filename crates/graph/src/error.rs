//! Error type for graph construction.

use core::fmt;

/// Errors arising while building a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= node_count`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u32,
        /// The number of nodes in the graph under construction.
        node_count: usize,
    },
    /// A self-loop `{u, u}` was supplied; the dynamic-graph models of the
    /// paper are over simple graphs.
    SelfLoop {
        /// The node with the loop.
        node: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            node_count: 5,
        };
        assert!(e.to_string().contains('9'));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains('3'));
    }
}
