//! Graph metrics: eccentricity, diameter, degree statistics.
//!
//! The degree statistics feed the δ-regularity conditions of §4.1: a graph
//! `H` is δ-regular when `max deg / min deg <= δ` (Corollary 6), and a path
//! family is δ-regular when no point is a much busier crossroad than average
//! (Corollary 5).

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::{Graph, NodeId};

/// Eccentricity of `src`: the maximum hop distance to any reachable node;
/// `None` when some node is unreachable.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    let d = bfs_distances(g, src);
    let mut ecc = 0;
    for &x in &d {
        if x == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(x);
    }
    Some(ecc)
}

/// Exact diameter by all-pairs BFS (`O(n·m)`); `None` for a disconnected or
/// empty graph.
///
/// # Examples
///
/// ```
/// use dg_graph::{generators, metrics};
/// assert_eq!(metrics::diameter(&generators::cycle(8)), Some(4));
/// ```
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.node_count() == 0 {
        return None;
    }
    let mut diam = 0;
    for u in g.nodes() {
        diam = diam.max(eccentricity(g, u)?);
    }
    Some(diam)
}

/// A fast diameter *lower bound* by a double BFS sweep (exact on trees,
/// usually tight on grids). Useful for graphs too large for [`diameter`].
pub fn diameter_double_sweep(g: &Graph) -> Option<u32> {
    if g.node_count() == 0 {
        return None;
    }
    let d0 = bfs_distances(g, 0);
    let (far, d_far) = d0
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .expect("non-empty");
    if *d_far == UNREACHABLE {
        return None;
    }
    eccentricity(g, far as NodeId)
}

/// Degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

impl DegreeStats {
    /// The δ-regularity parameter `max deg / min deg` of §4.1 (Corollary 6);
    /// `None` when some node is isolated.
    pub fn regularity(&self) -> Option<f64> {
        if self.min == 0 {
            None
        } else {
            Some(self.max as f64 / self.min as f64)
        }
    }
}

/// Computes [`DegreeStats`]; `None` for the empty graph.
///
/// # Examples
///
/// ```
/// use dg_graph::{generators, metrics};
///
/// let stats = metrics::degree_stats(&generators::torus(4, 4)).unwrap();
/// assert_eq!(stats.min, 4);
/// assert_eq!(stats.max, 4);
/// assert_eq!(stats.regularity(), Some(1.0));
/// ```
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    if g.node_count() == 0 {
        return None;
    }
    let mut min = usize::MAX;
    let mut max = 0;
    let mut sum = 0usize;
    for u in g.nodes() {
        let d = g.degree(u);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    Some(DegreeStats {
        min,
        max,
        mean: sum as f64 / g.node_count() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn eccentricity_path_ends() {
        let g = generators::path(5);
        assert_eq!(eccentricity(&g, 0), Some(4));
        assert_eq!(eccentricity(&g, 2), Some(2));
    }

    #[test]
    fn diameter_known_families() {
        assert_eq!(diameter(&generators::path(7)), Some(6));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&generators::star(6)), Some(2));
        assert_eq!(diameter(&generators::grid(4, 5)), Some(7));
    }

    #[test]
    fn diameter_disconnected_none() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn double_sweep_exact_on_path_and_grid() {
        for g in [generators::path(9), generators::grid(5, 5)] {
            assert_eq!(diameter_double_sweep(&g), diameter(&g));
        }
    }

    #[test]
    fn degree_stats_grid() {
        let g = generators::grid(3, 3);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 2); // corners
        assert_eq!(s.max, 4); // center
        assert_eq!(s.regularity(), Some(2.0));
        assert!((s.mean - 2.0 * 12.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn regularity_none_with_isolated_node() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        let s = degree_stats(&b.build()).unwrap();
        assert_eq!(s.regularity(), None);
    }

    #[test]
    fn empty_graph_none() {
        let g = GraphBuilder::new(0).build();
        assert!(degree_stats(&g).is_none());
        assert!(diameter(&g).is_none());
        assert!(diameter_double_sweep(&g).is_none());
    }
}
