//! Incremental construction of [`Graph`] values.

use crate::{Graph, GraphError, NodeId};

/// Incremental builder for a simple undirected [`Graph`].
///
/// Duplicate edges are deduplicated at [`GraphBuilder::build`]; self-loops
/// and out-of-range endpoints are rejected eagerly by
/// [`GraphBuilder::add_edge`].
///
/// # Examples
///
/// ```
/// use dg_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 0)?; // duplicate, deduplicated at build time
/// b.add_edge(2, 3)?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), dg_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` nodes (ids
    /// `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Number of nodes of the graph under construction.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`, or
    /// [`GraphError::NodeOutOfRange`] if either endpoint is not below the
    /// node count.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for e in [u, v] {
            if e as usize >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: e,
                    node_count: self.node_count,
                });
            }
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(self)
    }

    /// Adds every edge from an iterator, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`] from [`Self::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<&mut Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// Finalizes into a CSR [`Graph`], deduplicating parallel edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.node_count;
        let mut degrees = vec![0u32; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degrees[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; offsets[n] as usize];
        for &(u, v) in &self.edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Each adjacency list is filled in increasing order of the other
        // endpoint only for the `u -> v` direction; sort each list so
        // `has_edge` can binary-search.
        for u in 0..n {
            targets[offsets[u] as usize..offsets[u + 1] as usize].sort_unstable();
        }
        let edge_count = self.edges.len();
        Graph::from_csr(offsets, targets, edge_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(1, 1).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2).unwrap_err(),
            GraphError::NodeOutOfRange { node: 2, .. }
        ));
    }

    #[test]
    fn dedups_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(b.clone().build().edge_count(), 3);
        assert!(b.add_edges([(0, 9)]).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
