//! Generators for the graph families used throughout the reproduction.
//!
//! The k-augmented grid of §4.1 ("take a grid of s points and add an edge
//! between any pair of points whose hop-distance is not larger than k") is
//! the family on which Corollary 6 improves over the meeting-time bound of
//! Dimitriou–Nikoletseas–Spirakis \[15\].

use rand::Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// The path graph `P_n` (`0 — 1 — ... — n-1`).
///
/// # Examples
///
/// ```
/// let g = dg_graph::generators::path(5);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(dg_graph::metrics::diameter(&g), Some(4));
/// ```
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge((u - 1) as NodeId, u as NodeId)
            .expect("consecutive ids are in range and distinct");
    }
    b.build()
}

/// The cycle graph `C_n` (requires `n >= 3` to be simple; smaller `n`
/// degenerate to a path).
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(u as NodeId, ((u + 1) % n) as NodeId)
            .expect("cycle edges are simple for n >= 3");
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as NodeId, v as NodeId)
                .expect("distinct in-range endpoints");
        }
    }
    b.build()
}

/// The star graph: node 0 joined to nodes `1..n`.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(0, u as NodeId)
            .expect("distinct in-range endpoints");
    }
    b.build()
}

/// Index of grid point `(row, col)` in a `rows × cols` grid.
pub fn grid_index(rows: usize, cols: usize, row: usize, col: usize) -> NodeId {
    debug_assert!(row < rows && col < cols);
    (row * cols + col) as NodeId
}

/// The `rows × cols` grid graph (4-neighbourhood, open boundary).
///
/// # Examples
///
/// ```
/// let g = dg_graph::generators::grid(3, 3);
/// assert_eq!(g.node_count(), 9);
/// assert_eq!(g.edge_count(), 12);
/// ```
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let u = grid_index(rows, cols, r, c);
            if c + 1 < cols {
                b.add_edge(u, grid_index(rows, cols, r, c + 1))
                    .expect("grid edges valid");
            }
            if r + 1 < rows {
                b.add_edge(u, grid_index(rows, cols, r + 1, c))
                    .expect("grid edges valid");
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus grid (4-neighbourhood with wraparound).
///
/// Degenerate wrap edges (when a dimension is `< 3`) are deduplicated or
/// skipped so the result remains simple.
pub fn torus(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let u = grid_index(rows, cols, r, c);
            if cols > 1 {
                let v = grid_index(rows, cols, r, (c + 1) % cols);
                if u != v {
                    b.add_edge(u, v).expect("torus edges valid");
                }
            }
            if rows > 1 {
                let v = grid_index(rows, cols, (r + 1) % rows, c);
                if u != v {
                    b.add_edge(u, v).expect("torus edges valid");
                }
            }
        }
    }
    b.build()
}

/// The k-augmented `rows × cols` grid of §4.1: grid points, with an edge
/// between any two points at grid hop-distance (Manhattan distance) at most
/// `k`.
///
/// With `k = 1` this is exactly [`grid`]. The mixing time of a random walk
/// decreases in `k` while the meeting time stays `Ω(s log s)` — the regime
/// where Corollary 6 beats the bound of \[15\].
///
/// # Examples
///
/// ```
/// use dg_graph::generators::{grid, k_augmented_grid};
/// assert_eq!(k_augmented_grid(4, 4, 1), grid(4, 4));
/// let g2 = k_augmented_grid(4, 4, 2);
/// assert!(g2.edge_count() > grid(4, 4).edge_count());
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn k_augmented_grid(rows: usize, cols: usize, k: usize) -> Graph {
    assert!(k >= 1, "augmentation radius must be at least 1");
    let mut b = GraphBuilder::new(rows * cols);
    let (ri, ci, ki) = (rows as isize, cols as isize, k as isize);
    for r in 0..ri {
        for c in 0..ci {
            let u = grid_index(rows, cols, r as usize, c as usize);
            // Enumerate the half-neighbourhood (dr, dc) with
            // (dr > 0) or (dr == 0 and dc > 0) to add each edge once.
            for dr in 0..=ki {
                let lo = if dr == 0 { 1 } else { -ki + dr };
                for dc in lo..=(ki - dr) {
                    let (nr, nc) = (r + dr, c + dc);
                    if nr < 0 || nr >= ri || nc < 0 || nc >= ci {
                        continue;
                    }
                    let v = grid_index(rows, cols, nr as usize, nc as usize);
                    b.add_edge(u, v).expect("augmented edges valid");
                }
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes: vertices are bit
/// strings, edges join strings at Hamming distance 1. A classic
/// fast-mixing mobility graph (mixing time `O(d log d)` for the lazy
/// walk) to contrast with grids and barbells.
///
/// # Examples
///
/// ```
/// let q3 = dg_graph::generators::hypercube(3);
/// assert_eq!(q3.node_count(), 8);
/// assert_eq!(q3.edge_count(), 12);
/// assert_eq!(dg_graph::metrics::diameter(&q3), Some(3));
/// ```
///
/// # Panics
///
/// Panics if `d > 20` (over a million nodes — almost certainly a mistake).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                b.add_edge(u as NodeId, v as NodeId)
                    .expect("hypercube edges valid");
            }
        }
    }
    b.build()
}

/// The barbell graph: two cliques of `clique` nodes joined by a path of
/// `bridge` extra nodes — the canonical *slow-mixing* mobility graph
/// (random walk mixing `Ω(clique²·bridge)`), used to show that flooding
/// in the random walk model stalls on the bridge exactly as Theorem 1's
/// mixing-time factor predicts.
///
/// Node layout: `0..clique` = left clique, `clique..clique+bridge` = path,
/// rest = right clique.
///
/// # Examples
///
/// ```
/// use dg_graph::{generators, traversal};
/// let g = generators::barbell(4, 2);
/// assert_eq!(g.node_count(), 10);
/// assert!(traversal::is_connected(&g));
/// ```
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn barbell(clique: usize, bridge: usize) -> Graph {
    assert!(clique >= 2, "cliques need at least two nodes");
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::new(n);
    let right_start = clique + bridge;
    for side_start in [0, right_start] {
        for u in side_start..side_start + clique {
            for v in (u + 1)..side_start + clique {
                b.add_edge(u as NodeId, v as NodeId)
                    .expect("clique edges valid");
            }
        }
    }
    // Bridge path: last node of the left clique — path nodes — first node
    // of the right clique.
    let mut prev = (clique - 1) as NodeId;
    for p in clique..clique + bridge {
        b.add_edge(prev, p as NodeId).expect("bridge edges valid");
        prev = p as NodeId;
    }
    b.add_edge(prev, right_start as NodeId)
        .expect("bridge attaches to the right clique");
    b.build()
}

/// An Erdős–Rényi graph `G(n, p)`: each of the `n(n-1)/2` potential edges
/// present independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u as NodeId, v as NodeId)
                    .expect("distinct in-range endpoints");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, traversal};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
        // n < 3 degenerates to a path
        assert_eq!(cycle(2).edge_count(), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn grid_shape_and_diameter() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert_eq!(g.edge_count(), 17);
        assert_eq!(metrics::diameter(&g), Some(2 + 3));
    }

    #[test]
    fn torus_regular() {
        let g = torus(4, 4);
        assert_eq!(g.node_count(), 16);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn torus_small_dims_stay_simple() {
        // 2-wraparound would create parallel edges; they must be deduped.
        let g = torus(2, 2);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let g1 = torus(1, 4);
        assert!(traversal::is_connected(&g1));
    }

    #[test]
    fn k_augmented_matches_grid_at_k1() {
        assert_eq!(k_augmented_grid(5, 5, 1), grid(5, 5));
    }

    #[test]
    fn k_augmented_k2_neighbourhood() {
        let g = k_augmented_grid(5, 5, 2);
        // Center node (2,2) has all points at Manhattan distance 1 or 2:
        // 4 at distance 1 and 8 at distance 2.
        let center = grid_index(5, 5, 2, 2);
        assert_eq!(g.degree(center), 12);
        // Corner (0,0): (0,1),(1,0),(0,2),(2,0),(1,1)
        assert_eq!(g.degree(0), 5);
    }

    #[test]
    fn k_augmented_diameter_shrinks() {
        let d1 = metrics::diameter(&k_augmented_grid(6, 6, 1)).unwrap();
        let d2 = metrics::diameter(&k_augmented_grid(6, 6, 2)).unwrap();
        let d3 = metrics::diameter(&k_augmented_grid(6, 6, 3)).unwrap();
        assert!(d1 > d2);
        assert!(d2 >= d3);
    }

    #[test]
    fn hypercube_structure() {
        let q4 = hypercube(4);
        assert_eq!(q4.node_count(), 16);
        assert_eq!(q4.edge_count(), 32); // d * 2^(d-1)
        for u in q4.nodes() {
            assert_eq!(q4.degree(u), 4);
        }
        assert_eq!(metrics::diameter(&q4), Some(4));
        assert!(traversal::is_connected(&q4));
        // Neighbours differ in exactly one bit.
        for (u, v) in q4.edges() {
            assert_eq!((u ^ v).count_ones(), 1);
        }
    }

    #[test]
    fn hypercube_degenerate() {
        let q0 = hypercube(0);
        assert_eq!(q0.node_count(), 1);
        assert_eq!(q0.edge_count(), 0);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(5, 3);
        assert_eq!(g.node_count(), 13);
        // 2 * C(5,2) cliques + 4 bridge edges.
        assert_eq!(g.edge_count(), 2 * 10 + 4);
        assert!(traversal::is_connected(&g));
        // The diameter runs across the bridge: 1 + (bridge+1) + 1.
        assert_eq!(metrics::diameter(&g), Some(6));
    }

    #[test]
    fn barbell_no_bridge_nodes() {
        // bridge = 0: cliques joined by a single edge.
        let g = barbell(3, 0);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 7);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g0 = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(g0.edge_count(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g1.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_density_close_to_p() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 60;
        let p = 0.3;
        let g = erdos_renyi(n, p, &mut rng);
        let possible = (n * (n - 1) / 2) as f64;
        let density = g.edge_count() as f64 / possible;
        assert!((density - p).abs() < 0.05, "density = {density}");
    }
}
