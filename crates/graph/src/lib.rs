//! Static graph substrate for the `dynspread` workspace.
//!
//! The graph mobility models of Clementi–Silvestri–Trevisan (PODC 2012,
//! §4.1) move nodes over an arbitrary *mobility graph* `H(V, A)`: random
//! walks, random paths, k-augmented grids. This crate provides the static
//! graph machinery those models (and the experiment harness) need:
//!
//! * [`Graph`] — an immutable, compact CSR representation of a simple
//!   undirected graph, built through [`GraphBuilder`];
//! * [`generators`] — the graph families used across the paper's
//!   experiments (paths, cycles, grids, torus grids, **k-augmented grids**,
//!   complete graphs, stars, Erdős–Rényi);
//! * [`traversal`] — BFS distances and connected components;
//! * [`metrics`] — diameter, eccentricities, and the degree statistics that
//!   feed the δ-regularity conditions of Corollaries 5 and 6.
//!
//! # Examples
//!
//! ```
//! use dg_graph::{generators, metrics, traversal};
//!
//! let g = generators::grid(4, 4);
//! assert_eq!(g.node_count(), 16);
//! assert!(traversal::is_connected(&g));
//! assert_eq!(metrics::diameter(&g), Some(6)); // 2 * (4 - 1)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod error;
pub mod generators;
pub mod metrics;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{Graph, Neighbors};
pub use error::GraphError;

/// Node identifier: a dense index in `0..node_count`.
pub type NodeId = u32;
