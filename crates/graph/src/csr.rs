//! Immutable CSR (compressed sparse row) graph.

use crate::NodeId;

/// An immutable simple undirected graph in CSR form.
///
/// Built via [`crate::GraphBuilder`] or the [`crate::generators`] module.
/// Each undirected edge `{u, v}` is stored in both adjacency lists;
/// adjacency lists are sorted, enabling `O(log deg)` membership tests.
///
/// # Examples
///
/// ```
/// use dg_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    edge_count: usize,
}

impl Graph {
    pub(crate) fn from_csr(offsets: Vec<u32>, targets: Vec<NodeId>, edge_count: usize) -> Self {
        debug_assert_eq!(
            *offsets.last().expect("offsets non-empty") as usize,
            targets.len()
        );
        Graph {
            offsets,
            targets,
            edge_count,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        assert!(u < self.node_count(), "node {u} out of range");
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Sorted adjacency list of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        assert!(u < self.node_count(), "node {u} out of range");
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// `true` if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.node_count() || (v as usize) >= self.node_count() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over node identifiers `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }
}

/// Iterator over the neighbors of a node (alias for the slice iterator).
pub type Neighbors<'a> = std::slice::Iter<'a, NodeId>;

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle() -> crate::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 0).unwrap();
        b.build()
    }

    #[test]
    fn triangle_shape() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 0).unwrap();
        b.add_edge(3, 2).unwrap();
        b.add_edge(3, 1).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(3), &[0, 1, 2]);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = triangle();
        for u in 0..3u32 {
            for v in 0..3u32 {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let g = triangle();
        assert!(!g.has_edge(0, 100));
        assert!(!g.has_edge(100, 0));
    }

    #[test]
    fn edges_enumerated_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let b = GraphBuilder::new(5);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(4), 0);
    }
}
